"""Parameter containers.

Following §II and §III of the paper, weights and biases are allocated
*once per layer and direction* and shared by every unrolled timestep —
the working-set optimisation all frameworks apply.  Gradients use the same
container with zero-initialised arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.kernels.initializers import glorot_uniform, zeros
from repro.models.spec import BRNNSpec


@dataclass
class DirectionParams:
    """Fused weight matrix and bias of one direction of one layer."""

    W: np.ndarray
    b: np.ndarray


@dataclass
class LayerParams:
    """Forward-order and reverse-order parameters of one BRNN layer."""

    fwd: DirectionParams
    rev: DirectionParams

    def direction(self, name: str) -> DirectionParams:
        if name == "fwd":
            return self.fwd
        if name == "rev":
            return self.rev
        raise ValueError(f"direction must be 'fwd' or 'rev', got {name!r}")


@dataclass
class HeadParams:
    """Dense output head."""

    W: np.ndarray
    b: np.ndarray


class BRNNParams:
    """All trainable arrays of a BRNN (or their gradients)."""

    def __init__(self, spec: BRNNSpec, layers: List[LayerParams], head: HeadParams):
        self.spec = spec
        self.layers = layers
        self.head = head

    # -- constructors -----------------------------------------------------------

    @classmethod
    def initialize(cls, spec: BRNNSpec, seed: int = 0) -> "BRNNParams":
        """Glorot-initialised weights, zero biases, deterministic in ``seed``."""
        rng = np.random.default_rng(seed)
        layers = []
        for layer in range(spec.num_layers):
            w_shape, b_shape = spec.cell_param_shapes(layer)
            layers.append(
                LayerParams(
                    fwd=DirectionParams(
                        W=glorot_uniform(rng, w_shape, spec.dtype),
                        b=zeros(b_shape, spec.dtype),
                    ),
                    rev=DirectionParams(
                        W=glorot_uniform(rng, w_shape, spec.dtype),
                        b=zeros(b_shape, spec.dtype),
                    ),
                )
            )
        head = HeadParams(
            W=glorot_uniform(rng, (spec.head_input_size, spec.num_classes), spec.dtype),
            b=zeros((spec.num_classes,), spec.dtype),
        )
        return cls(spec, layers, head)

    @classmethod
    def zeros_like(cls, spec: BRNNSpec) -> "BRNNParams":
        """Zero-filled container of the same structure (gradient buffer)."""
        layers = []
        for layer in range(spec.num_layers):
            w_shape, b_shape = spec.cell_param_shapes(layer)
            layers.append(
                LayerParams(
                    fwd=DirectionParams(W=zeros(w_shape, spec.dtype), b=zeros(b_shape, spec.dtype)),
                    rev=DirectionParams(W=zeros(w_shape, spec.dtype), b=zeros(b_shape, spec.dtype)),
                )
            )
        head = HeadParams(
            W=zeros((spec.head_input_size, spec.num_classes), spec.dtype),
            b=zeros((spec.num_classes,), spec.dtype),
        )
        return cls(spec, layers, head)

    # -- array-level helpers -------------------------------------------------------

    def arrays(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` for every trainable array, fixed order."""
        for i, layer in enumerate(self.layers):
            yield f"layer{i}.fwd.W", layer.fwd.W
            yield f"layer{i}.fwd.b", layer.fwd.b
            yield f"layer{i}.rev.W", layer.rev.W
            yield f"layer{i}.rev.b", layer.rev.b
        yield "head.W", self.head.W
        yield "head.b", self.head.b

    def num_parameters(self) -> int:
        return sum(a.size for _, a in self.arrays())

    def copy(self) -> "BRNNParams":
        out = BRNNParams.zeros_like(self.spec)
        for (_, dst), (_, src) in zip(out.arrays(), self.arrays()):
            dst[...] = src
        return out

    def zero_(self) -> None:
        """In-place reset of every array (reuse one gradient buffer)."""
        for _, a in self.arrays():
            a[...] = 0

    def add_scaled_(self, other: "BRNNParams", alpha: float) -> None:
        """``self += alpha * other`` in place (SGD step / gradient reduce)."""
        for (_, dst), (_, src) in zip(self.arrays(), other.arrays()):
            dst += np.asarray(alpha, dtype=dst.dtype) * src

    def allclose(self, other: "BRNNParams", **kwargs) -> bool:
        return all(
            np.allclose(a, b, **kwargs)
            for (_, a), (_, b) in zip(self.arrays(), other.arrays())
        )

    def nbytes(self) -> int:
        return sum(a.nbytes for _, a in self.arrays())

    # -- checkpointing ------------------------------------------------------------

    def save(self, path) -> None:
        """Write all trainable arrays to an ``.npz`` checkpoint."""
        np.savez(path, **{name: array for name, array in self.arrays()})

    @classmethod
    def load(cls, path, spec: BRNNSpec) -> "BRNNParams":
        """Load a checkpoint written by :meth:`save` for the same spec."""
        out = cls.zeros_like(spec)
        with np.load(path) as data:
            for name, array in out.arrays():
                if name not in data:
                    raise ValueError(f"checkpoint missing array {name!r}")
                stored = data[name]
                if stored.shape != array.shape:
                    raise ValueError(
                        f"checkpoint array {name!r} has shape {stored.shape}, "
                        f"spec expects {array.shape}"
                    )
                array[...] = stored
        return out
