"""Model specification for deep bidirectional RNNs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.kernels.gru import gru_param_shapes
from repro.kernels.lstm import lstm_param_shapes
from repro.kernels.rnn import rnn_param_shapes
from repro.kernels.merge import MERGE_MODES, merge_output_dim

CELL_TYPES = ("lstm", "gru", "rnn")
HEAD_TYPES = ("many_to_one", "many_to_many")


@dataclass(frozen=True)
class BRNNSpec:
    """Architecture of a deep BRNN (Fig. 1 of the paper).

    ``merge_mode="sum"`` is the evaluation default: it keeps the
    intermediate-layer width equal to ``hidden_size``, which reproduces the
    paper's trainable-parameter counts exactly (e.g. 6.3 M for the
    256/256 6-layer BLSTM).
    """

    cell: str = "lstm"
    input_size: int = 64
    hidden_size: int = 128
    num_layers: int = 2
    merge_mode: str = "sum"
    head: str = "many_to_one"
    num_classes: int = 11
    dtype: np.dtype = np.float32

    def __post_init__(self) -> None:
        if self.cell not in CELL_TYPES:
            raise ValueError(f"cell must be one of {CELL_TYPES}, got {self.cell!r}")
        if self.head not in HEAD_TYPES:
            raise ValueError(f"head must be one of {HEAD_TYPES}, got {self.head!r}")
        if self.merge_mode not in MERGE_MODES:
            raise ValueError(f"merge_mode must be one of {MERGE_MODES}, got {self.merge_mode!r}")
        for name in ("input_size", "hidden_size", "num_layers", "num_classes"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")

    # -- derived dimensions ---------------------------------------------------

    @property
    def merged_size(self) -> int:
        """Feature width of a merged (forward ⊕ reverse) output."""
        return merge_output_dim(self.merge_mode, self.hidden_size)

    def layer_input_size(self, layer: int) -> int:
        """Input feature width of ``layer`` (layer 0 reads the raw input)."""
        if layer < 0 or layer >= self.num_layers:
            raise ValueError(f"layer {layer} out of range")
        return self.input_size if layer == 0 else self.merged_size

    def cell_param_shapes(self, layer: int) -> Tuple[Tuple[int, int], Tuple[int]]:
        """(W, b) shapes of one direction of ``layer``."""
        shape_fn = {
            "lstm": lstm_param_shapes,
            "gru": gru_param_shapes,
            "rnn": rnn_param_shapes,
        }[self.cell]
        return shape_fn(self.layer_input_size(layer), self.hidden_size)

    @property
    def head_input_size(self) -> int:
        return self.merged_size

    def num_parameters(self) -> int:
        """Total trainable parameters (matches the paper's Tables III/IV)."""
        total = 0
        for layer in range(self.num_layers):
            (w_shape, b_shape) = self.cell_param_shapes(layer)
            total += 2 * (w_shape[0] * w_shape[1] + b_shape[0])  # two directions
        total += self.head_input_size * self.num_classes + self.num_classes
        return total

    def describe(self) -> str:
        return (
            f"B{self.cell.upper()} {self.num_layers}L in={self.input_size} "
            f"hid={self.hidden_size} merge={self.merge_mode} {self.head} "
            f"({self.num_parameters()/1e6:.1f}M params)"
        )
