"""BRNN model layer: specs, parameters, and the sequential reference oracle."""

from repro.models.spec import BRNNSpec
from repro.models.params import BRNNParams, HeadParams, LayerParams
from repro.models.reference import (
    reference_forward,
    reference_backward,
    reference_loss_and_grads,
    reference_train_step,
)
from repro.models.gradcheck import check_gradients

__all__ = [
    "BRNNSpec",
    "BRNNParams",
    "LayerParams",
    "HeadParams",
    "reference_forward",
    "reference_backward",
    "reference_loss_and_grads",
    "reference_train_step",
    "check_gradients",
]
