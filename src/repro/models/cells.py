"""Cell-type dispatch shared by the reference oracle and the B-Par tasks.

Both execution paths call *these* functions for every cell update, so any
schedule that respects the data dependences computes bit-identical results.
LSTM cells carry a cell state ``c``; for GRUs the ``c``/``dc`` slots are
``None`` and flow through untouched.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.gru import (
    GRUCache,
    gru_backward_step,
    gru_bwd_flops,
    gru_forward_step,
    gru_fwd_flops,
)
from repro.kernels.lstm import (
    LSTMCache,
    lstm_backward_step,
    lstm_bwd_flops,
    lstm_forward_step,
    lstm_fwd_flops,
)
from repro.kernels.rnn import (
    RNNCache,
    rnn_backward_step,
    rnn_bwd_flops,
    rnn_forward_step,
    rnn_fwd_flops,
)
from repro.models.spec import BRNNSpec


def cell_forward(
    spec: BRNNSpec,
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: Optional[np.ndarray],
    W: np.ndarray,
    b: np.ndarray,
):
    """One cell update; returns ``(h, c_or_None, cache)``."""
    if spec.cell == "lstm":
        return lstm_forward_step(x, h_prev, c_prev, W, b)
    if spec.cell == "gru":
        h, cache = gru_forward_step(x, h_prev, W, b)
        return h, None, cache
    h, cache = rnn_forward_step(x, h_prev, W, b)
    return h, None, cache


def cell_backward(
    spec: BRNNSpec,
    dh: np.ndarray,
    dc: Optional[np.ndarray],
    cache,
    W: np.ndarray,
    dW: np.ndarray,
    db: np.ndarray,
):
    """Backward of one cell update; returns ``(dx, dh_prev, dc_prev_or_None)``."""
    if spec.cell == "lstm":
        return lstm_backward_step(dh, dc, cache, W, dW, db)
    if spec.cell == "gru":
        dx, dh_prev = gru_backward_step(dh, cache, W, dW, db)
        return dx, dh_prev, None
    dx, dh_prev = rnn_backward_step(dh, cache, W, dW, db)
    return dx, dh_prev, None


_FWD_FLOPS = {"lstm": lstm_fwd_flops, "gru": gru_fwd_flops, "rnn": rnn_fwd_flops}
_BWD_FLOPS = {"lstm": lstm_bwd_flops, "gru": gru_bwd_flops, "rnn": rnn_bwd_flops}


def cell_fwd_flops(spec: BRNNSpec, batch: int, layer: int) -> float:
    fn = _FWD_FLOPS[spec.cell]
    return fn(batch, spec.layer_input_size(layer), spec.hidden_size)


def cell_bwd_flops(spec: BRNNSpec, batch: int, layer: int) -> float:
    fn = _BWD_FLOPS[spec.cell]
    return fn(batch, spec.layer_input_size(layer), spec.hidden_size)


def zeros_state(spec: BRNNSpec, batch: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Initial (h0, c0) for one direction of one layer."""
    h0 = np.zeros((batch, spec.hidden_size), dtype=spec.dtype)
    c0 = np.zeros((batch, spec.hidden_size), dtype=spec.dtype) if spec.cell == "lstm" else None
    return h0, c0
