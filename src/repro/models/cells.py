"""Cell-type dispatch shared by the reference oracle and the B-Par tasks.

Both execution paths call *these* functions for every cell update, so any
schedule that respects the data dependences computes bit-identical results.
LSTM cells carry a cell state ``c``; for GRUs the ``c``/``dc`` slots are
``None`` and flow through untouched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.gru import (
    GRUCache,
    gru_backward_step,
    gru_backward_step_proj,
    gru_backward_step_unfused,
    gru_bwd_flops,
    gru_bwd_pointwise_flops,
    gru_bwd_step_proj_flops,
    gru_forward_step,
    gru_forward_step_act,
    gru_forward_step_proj,
    gru_forward_step_proj_act,
    gru_forward_step_unfused,
    gru_fwd_flops,
    gru_fwd_pointwise_flops,
    gru_fwd_step_proj_flops,
    gru_gate_gemm_flops,
    gru_proj_bwd_flops,
    gru_proj_flops,
)
from repro.kernels.lstm import (
    LSTMCache,
    lstm_backward_step,
    lstm_backward_step_proj,
    lstm_backward_step_unfused,
    lstm_bwd_flops,
    lstm_bwd_pointwise_flops,
    lstm_bwd_step_proj_flops,
    lstm_forward_step,
    lstm_forward_step_act,
    lstm_forward_step_proj,
    lstm_forward_step_proj_act,
    lstm_forward_step_unfused,
    lstm_fwd_flops,
    lstm_fwd_pointwise_flops,
    lstm_fwd_step_proj_flops,
    lstm_gate_gemm_flops,
    lstm_proj_bwd_flops,
    lstm_proj_flops,
)
from repro.kernels.rnn import (
    RNNCache,
    rnn_backward_step,
    rnn_backward_step_proj,
    rnn_backward_step_unfused,
    rnn_bwd_flops,
    rnn_bwd_pointwise_flops,
    rnn_bwd_step_proj_flops,
    rnn_forward_step,
    rnn_forward_step_act,
    rnn_forward_step_proj,
    rnn_forward_step_proj_act,
    rnn_forward_step_unfused,
    rnn_fwd_flops,
    rnn_fwd_pointwise_flops,
    rnn_fwd_step_proj_flops,
    rnn_gate_gemm_flops,
    rnn_proj_bwd_flops,
    rnn_proj_flops,
)
from repro.models.spec import BRNNSpec

#: The fusion-policy vocabulary (``ExecutionConfig.fusion``, docs/PERF.md):
#: "off" — per-gate GEMMs, separate activation passes; "gates" — the
#: stacked gate GEMM (the default, and the kernels' historical behaviour);
#: "gates+act" — stacked GEMM with activations applied in-payload;
#: "wavefront" — gates+act kernels inside multi-step wavefront tiles (the
#: tiling itself is a graph-builder concern, so the kernel dispatch treats
#: it as gates+act).
FUSION_MODES = ("off", "gates", "gates+act", "wavefront")


def _kernel_mode(fusion: str) -> str:
    """Kernel-variant selector: 'unfused' | 'stacked' | 'act'."""
    if fusion == "off":
        return "unfused"
    if fusion in ("gates+act", "wavefront"):
        return "act"
    return "stacked"


_FWD_STEP = {
    "lstm": {
        "unfused": lstm_forward_step_unfused,
        "stacked": lstm_forward_step,
        "act": lstm_forward_step_act,
    },
    "gru": {
        "unfused": gru_forward_step_unfused,
        "stacked": gru_forward_step,
        "act": gru_forward_step_act,
    },
    "rnn": {
        "unfused": rnn_forward_step_unfused,
        "stacked": rnn_forward_step,
        "act": rnn_forward_step_act,
    },
}

_BWD_STEP = {
    "lstm": {"unfused": lstm_backward_step_unfused, "stacked": lstm_backward_step},
    "gru": {"unfused": gru_backward_step_unfused, "stacked": gru_backward_step},
    "rnn": {"unfused": rnn_backward_step_unfused, "stacked": rnn_backward_step},
}

_FWD_STEP_PROJ = {
    "lstm": {"stacked": lstm_forward_step_proj, "act": lstm_forward_step_proj_act},
    "gru": {"stacked": gru_forward_step_proj, "act": gru_forward_step_proj_act},
    "rnn": {"stacked": rnn_forward_step_proj, "act": rnn_forward_step_proj_act},
}


def cell_forward(
    spec: BRNNSpec,
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: Optional[np.ndarray],
    W: np.ndarray,
    b: np.ndarray,
    fusion: str = "gates",
):
    """One cell update; returns ``(h, c_or_None, cache)``.

    ``fusion`` selects the kernel variant (:data:`FUSION_MODES`); every
    variant's forward is bitwise identical to the default stacked kernel.
    """
    fn = _FWD_STEP[spec.cell][_kernel_mode(fusion)]
    if spec.cell == "lstm":
        return fn(x, h_prev, c_prev, W, b)
    h, cache = fn(x, h_prev, W, b)
    return h, None, cache


def cell_backward(
    spec: BRNNSpec,
    dh: np.ndarray,
    dc: Optional[np.ndarray],
    cache,
    W: np.ndarray,
    dW: np.ndarray,
    db: np.ndarray,
    fusion: str = "gates",
):
    """Backward of one cell update; returns ``(dx, dh_prev, dc_prev_or_None)``.

    ``fusion="off"`` uses the split per-gate backward (gradcheck-exact);
    the other modes share the stacked backward (the in-payload activation
    fusion changes only where the forward writes its gate tensors).
    """
    mode = "unfused" if _kernel_mode(fusion) == "unfused" else "stacked"
    fn = _BWD_STEP[spec.cell][mode]
    if spec.cell == "lstm":
        return fn(dh, dc, cache, W, dW, db)
    dx, dh_prev = fn(dh, cache, W, dW, db)
    return dx, dh_prev, None


def cell_input_projection(
    spec: BRNNSpec, xs: Sequence[np.ndarray], W: np.ndarray
) -> List[np.ndarray]:
    """Hoisted input projection of a block of timesteps: ``[x_t @ W[:I]]``.

    Stacks the block's inputs into one ``(K·B, I)`` GEMM — the fused-
    projection optimisation — and returns per-timestep ``(B, G·H)`` slices.
    Bit-identity contract: BLAS computes each row block of a multi-row GEMM
    exactly as the per-timestep ``(B, I) @ (I, G·H)`` product, *except* for
    single-row operands, which NumPy dispatches to a different (matvec)
    kernel — so a batch of 1 falls back to per-timestep products.
    """
    input_size = xs[0].shape[1]
    Wx = W[:input_size]
    batch = xs[0].shape[0]
    if batch == 1:
        return [x @ Wx for x in xs]
    if len(xs) == 1:
        return [xs[0] @ Wx]
    zx = np.concatenate(xs, axis=0) @ Wx
    return [zx[k * batch : (k + 1) * batch] for k in range(len(xs))]


def cell_forward_proj(
    spec: BRNNSpec,
    zx: np.ndarray,
    h_prev: np.ndarray,
    c_prev: Optional[np.ndarray],
    W: np.ndarray,
    b: np.ndarray,
    need_cache: bool = True,
    fusion: str = "gates",
):
    """Shrunken cell update from a precomputed ``Zx_t``; returns ``(h, c, cache)``.

    ``fusion="off"`` never composes with the hoisted projection (the
    builder disables hoisting for the unfused baseline), so the proj
    dispatch only distinguishes stacked vs in-payload activations.
    """
    mode = "act" if _kernel_mode(fusion) == "act" else "stacked"
    fn = _FWD_STEP_PROJ[spec.cell][mode]
    if spec.cell == "lstm":
        return fn(zx, h_prev, c_prev, W, b, need_cache)
    h, cache = fn(zx, h_prev, W, b, need_cache)
    return h, None, cache


def cell_backward_proj(
    spec: BRNNSpec,
    dh: np.ndarray,
    dc: Optional[np.ndarray],
    cache,
    W: np.ndarray,
    dW: np.ndarray,
    db: np.ndarray,
    fusion: str = "gates",
):
    """Backward of the shrunken cell update; returns ``(dz, dh_prev, dc_prev)``.

    All proj-composable fusion modes share the stacked backward — ``dz``
    must stay a single ``(B, G·H)`` block for the per-block ``proj_bwd``
    GEMMs downstream.
    """
    if spec.cell == "lstm":
        return lstm_backward_step_proj(dh, dc, cache, W, dW, db)
    if spec.cell == "gru":
        dz, dh_prev = gru_backward_step_proj(dh, cache, W, dW, db)
        return dz, dh_prev, None
    dz, dh_prev = rnn_backward_step_proj(dh, cache, W, dW, db)
    return dz, dh_prev, None


_FWD_FLOPS = {"lstm": lstm_fwd_flops, "gru": gru_fwd_flops, "rnn": rnn_fwd_flops}
_BWD_FLOPS = {"lstm": lstm_bwd_flops, "gru": gru_bwd_flops, "rnn": rnn_bwd_flops}
_PROJ_FLOPS = {"lstm": lstm_proj_flops, "gru": gru_proj_flops, "rnn": rnn_proj_flops}
_FWD_STEP_PROJ_FLOPS = {
    "lstm": lstm_fwd_step_proj_flops,
    "gru": gru_fwd_step_proj_flops,
    "rnn": rnn_fwd_step_proj_flops,
}
_BWD_STEP_PROJ_FLOPS = {
    "lstm": lstm_bwd_step_proj_flops,
    "gru": gru_bwd_step_proj_flops,
    "rnn": rnn_bwd_step_proj_flops,
}
_PROJ_BWD_FLOPS = {
    "lstm": lstm_proj_bwd_flops,
    "gru": gru_proj_bwd_flops,
    "rnn": rnn_proj_bwd_flops,
}
_GATE_GEMM_FLOPS = {
    "lstm": lstm_gate_gemm_flops,
    "gru": gru_gate_gemm_flops,
    "rnn": rnn_gate_gemm_flops,
}
_FWD_POINTWISE_FLOPS = {
    "lstm": lstm_fwd_pointwise_flops,
    "gru": gru_fwd_pointwise_flops,
    "rnn": rnn_fwd_pointwise_flops,
}
_BWD_POINTWISE_FLOPS = {
    "lstm": lstm_bwd_pointwise_flops,
    "gru": gru_bwd_pointwise_flops,
    "rnn": rnn_bwd_pointwise_flops,
}


def cell_fwd_flops(spec: BRNNSpec, batch: int, layer: int) -> float:
    fn = _FWD_FLOPS[spec.cell]
    return fn(batch, spec.layer_input_size(layer), spec.hidden_size)


def cell_bwd_flops(spec: BRNNSpec, batch: int, layer: int) -> float:
    fn = _BWD_FLOPS[spec.cell]
    return fn(batch, spec.layer_input_size(layer), spec.hidden_size)


def cell_proj_flops(spec: BRNNSpec, batch: int, layer: int) -> float:
    """Per-timestep flops of the hoisted forward input projection."""
    fn = _PROJ_FLOPS[spec.cell]
    return fn(batch, spec.layer_input_size(layer), spec.hidden_size)


def cell_fwd_step_proj_flops(spec: BRNNSpec, batch: int) -> float:
    """Forward flops of the shrunken (fused-projection) cell step."""
    return _FWD_STEP_PROJ_FLOPS[spec.cell](batch, spec.hidden_size)


def cell_bwd_step_proj_flops(spec: BRNNSpec, batch: int) -> float:
    """Backward flops of the shrunken (fused-projection) cell step."""
    return _BWD_STEP_PROJ_FLOPS[spec.cell](batch, spec.hidden_size)


def cell_proj_bwd_flops(
    spec: BRNNSpec, batch: int, layer: int, need_dx: bool = True
) -> float:
    """Per-timestep flops of the hoisted backward (``dW_x`` and, above
    layer 0, ``dX``)."""
    fn = _PROJ_BWD_FLOPS[spec.cell]
    return fn(batch, spec.layer_input_size(layer), spec.hidden_size, need_dx)


def cell_gate_gemm_flops(
    spec: BRNNSpec, batch: int, layer: int, n_gates: Optional[int] = None
) -> float:
    """GEMM flops of ``n_gates`` gate pre-activations (``None`` = all gates).

    Summing the per-gate calls (``n_gates=1``) over a cell's gates equals
    the stacked total *exactly* — the conservation invariant the fusion
    pass's flops accounting is audited against.
    """
    fn = _GATE_GEMM_FLOPS[spec.cell]
    return fn(batch, spec.layer_input_size(layer), spec.hidden_size, n_gates)


def cell_fwd_pointwise_flops(spec: BRNNSpec, batch: int) -> float:
    """Elementwise flops of one forward cell update (activation + state math)."""
    return _FWD_POINTWISE_FLOPS[spec.cell](batch, spec.hidden_size)


def cell_bwd_pointwise_flops(spec: BRNNSpec, batch: int) -> float:
    """Elementwise flops of one backward cell update."""
    return _BWD_POINTWISE_FLOPS[spec.cell](batch, spec.hidden_size)


def zeros_state(spec: BRNNSpec, batch: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Initial (h0, c0) for one direction of one layer."""
    h0 = np.zeros((batch, spec.hidden_size), dtype=spec.dtype)
    c0 = np.zeros((batch, spec.hidden_size), dtype=spec.dtype) if spec.cell == "lstm" else None
    return h0, c0
