"""PyTorch-1.7-CPU-like execution profile.

The paper's P-CPU columns are consistently 2-9× slower than K-CPU: PyTorch
1.7's CPU RNN path dispatches per-timestep ops eagerly (no static graph),
repacks operands for oneDNN per op, and its effective GEMM rate degrades on
wide hidden layers (the 256/1024 BLSTM rows show a ~5× gap to Keras).
Profile constants calibrated against the P-CPU columns of Tables III/IV.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.framework import FrameworkCPUEngine, FrameworkProfile
from repro.models.spec import BRNNSpec
from repro.simarch.machine import MachineSpec


def pytorch_cpu_profile() -> FrameworkProfile:
    return FrameworkProfile(
        name="PyTorch-CPU",
        op_overhead_s=30e-6,
        gemm_eff_base=0.80,
        gemm_eff_hidden_ref=400.0,  # eager/repack path degrades on wide layers
        sync_s=10e-6,
        barrier_s=200e-6,
        batch_fixed_s=12e-3,
        min_intra_work=10.0e6,
        max_intra=16,
        intra_eff_alpha=0.08,
    )


class PyTorchCPUEngine(FrameworkCPUEngine):
    """Per-layer-barrier engine with the PyTorch CPU profile."""

    def __init__(self, spec: BRNNSpec, machine: Optional[MachineSpec] = None) -> None:
        super().__init__(spec, pytorch_cpu_profile(), machine)
