"""Keras-TensorFlow-2.3-CPU-like execution profile.

TF with Intel optimisations (MKL-parallel + oneDNN, AVX512) runs fused-gate
RNN GEMMs near full MKL efficiency but keeps the per-layer barrier
discipline and a moderate per-op graph-dispatch cost.  Constants calibrated
against the K-CPU columns of Tables III/IV (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.framework import FrameworkCPUEngine, FrameworkProfile
from repro.models.spec import BRNNSpec
from repro.simarch.machine import MachineSpec


def keras_cpu_profile() -> FrameworkProfile:
    return FrameworkProfile(
        name="Keras-CPU",
        op_overhead_s=15e-6,
        gemm_eff_base=1.0,
        gemm_eff_hidden_ref=0.0,  # fused oneDNN path: size-independent
        sync_s=5e-6,
        barrier_s=120e-6,
        batch_fixed_s=10e-3,
        min_intra_work=8.0e6,
        max_intra=16,
        intra_eff_alpha=0.06,
    )


class KerasCPUEngine(FrameworkCPUEngine):
    """Per-layer-barrier engine with the Keras-TF CPU profile."""

    def __init__(self, spec: BRNNSpec, machine: Optional[MachineSpec] = None) -> None:
        super().__init__(spec, keras_cpu_profile(), machine)
