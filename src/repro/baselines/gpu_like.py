"""Closed-form GPU cost models for the K-GPU / P-GPU table columns.

A BRNN timestep on the GPU is one fused-gate GEMM kernel per direction
(cuDNN); the backward pass launches roughly twice as many kernels with
twice the flops.  Per-kernel latency (launch + framework glue) dominates
for small batches/sequences — which is why the paper's CPU runs beat both
GPU frameworks at batch 1 / seq ≤ 10 — while throughput wins for
batch 256 × seq 100.  PyTorch-GPU additionally drives the RNN loop from
Python with far higher per-kernel cost, and the paper reports it *hangs*
beyond ~90 M parameters; we reproduce that as ``None`` (table dash).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models.cells import cell_bwd_flops, cell_fwd_flops
from repro.models.spec import BRNNSpec
from repro.simarch.presets import GPUSpec, tesla_v100


@dataclass(frozen=True)
class GPUFrameworkModel:
    """One framework's GPU execution profile on a given device."""

    name: str
    device: GPUSpec
    #: per-kernel framework latency (replaces the device's bare launch cost)
    kernel_latency_s: float
    #: fixed per-batch cost: host/device transfers, graph setup
    batch_overhead_s: float
    #: forward/reverse streams overlap factor (1.0 = fully serialised,
    #: 0.5 = perfectly concurrent)
    direction_overlap: float
    #: parameter count beyond which runs fail (None = never);
    #: models PyTorch-GPU hanging above ~90M parameters
    hang_params: Optional[float] = None

    def batch_time(
        self, spec: BRNNSpec, seq_len: int, batch: int, training: bool = True
    ) -> Optional[float]:
        """Seconds per batch, or ``None`` when the configuration hangs."""
        if self.hang_params is not None and spec.num_parameters() > self.hang_params:
            return None
        dev = self.device
        total = self.batch_overhead_s
        for layer in range(spec.num_layers):
            fwd = cell_fwd_flops(spec, batch, layer)
            per_dir = sum(
                self.kernel_latency_s + _gemm_body(dev, fwd) for _ in range(seq_len)
            )
            total += 2.0 * self.direction_overlap * per_dir
            if training:
                bwd = cell_bwd_flops(spec, batch, layer)
                per_dir_bwd = sum(
                    2.0 * self.kernel_latency_s + _gemm_body(dev, bwd)
                    for _ in range(seq_len)
                )
                total += 2.0 * self.direction_overlap * per_dir_bwd
        return total


def _gemm_body(dev: GPUSpec, flops: float) -> float:
    """Kernel body time (the device's gemm_time minus its bare launch cost)."""
    return dev.gemm_time(flops) - dev.kernel_latency_s


def keras_gpu_model(device: Optional[GPUSpec] = None) -> GPUFrameworkModel:
    """Keras-TF on cuDNN: compiled graph, low per-kernel cost."""
    return GPUFrameworkModel(
        name="Keras-GPU",
        device=device or tesla_v100(),
        kernel_latency_s=14e-6,
        batch_overhead_s=22e-3,
        direction_overlap=0.6,
        hang_params=None,
    )


def pytorch_gpu_model(device: Optional[GPUSpec] = None) -> GPUFrameworkModel:
    """PyTorch 1.7 on cuDNN: eager per-timestep dispatch from Python."""
    return GPUFrameworkModel(
        name="PyTorch-GPU",
        device=device or tesla_v100(),
        kernel_latency_s=145e-6,
        batch_overhead_s=12e-3,
        direction_overlap=0.6,
        hang_params=90e6,
    )
