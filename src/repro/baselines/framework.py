"""Per-layer-barrier framework execution model (Keras/PyTorch CPU discipline).

§II of the paper: conventional frameworks process a BRNN layer by running
the forward-order RNN timestep by timestep, then the reverse-order RNN,
then the merges, with a barrier before the next layer starts.  The only
parallelism is *intra-op*: each timestep's fused-gate GEMM is split across
cores by the MKL-parallel/oneDNN thread pool (a fork-join per op).

We build exactly that task structure and run it on the same simulated
machine as B-Par, so the framework's CPU-starvation behaviour (cores idle
at barriers, fork-join sync, NUMA traffic for weights homed on socket 0)
emerges structurally rather than being hard-coded.  Per-framework constants
(op dispatch latency, GEMM efficiency, sync costs) live in
:class:`FrameworkProfile`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.models.cells import cell_bwd_flops, cell_fwd_flops
from repro.models.spec import BRNNSpec
from repro.runtime.depgraph import TaskGraph
from repro.runtime.simexec import SimulatedExecutor
from repro.runtime.task import INTERLEAVED_HOME, RegionSpace
from repro.runtime.trace import ExecutionTrace
from repro.simarch.machine import MachineSpec
from repro.simarch.presets import xeon_8160_2s


@dataclass(frozen=True)
class FrameworkProfile:
    """Calibrated constants of one framework's CPU execution path."""

    name: str
    #: dispatch latency charged once per RNN timestep op (graph interpreter,
    #: kernel selection, oneDNN descriptor handling, ...)
    op_overhead_s: float
    #: sustained fraction of the machine's GEMM rate the framework reaches
    gemm_eff_base: float
    #: hidden size at which the efficiency halves again (0 = size-independent);
    #: models e.g. PyTorch's non-fused RNN path degrading for wide layers
    gemm_eff_hidden_ref: float
    #: fork-join synchronisation cost per intra-op parallel region, scaled
    #: by log2(ways)
    sync_s: float
    #: per-layer barrier cost
    barrier_s: float
    #: fixed per-batch cost (input staging, session dispatch, feed glue)
    batch_fixed_s: float = 0.0
    #: minimum GEMM flops that justify one extra intra-op thread
    min_intra_work: float = 4.0e6
    #: cap on intra-op ways (thread-pool size limits)
    max_intra: int = 48
    #: parallel-GEMM efficiency decay: splitting a GEMM over ``w`` ways
    #: retains ``1 / (1 + alpha * (w - 1))`` of the per-core rate (thread
    #: wake-up, panel sharing, bandwidth contention inside MKL-parallel)
    intra_eff_alpha: float = 0.03

    def gemm_eff(self, hidden: int) -> float:
        if self.gemm_eff_hidden_ref <= 0:
            return self.gemm_eff_base
        return self.gemm_eff_base / (1.0 + hidden / self.gemm_eff_hidden_ref)

    def intra_eff(self, ways: int) -> float:
        return 1.0 / (1.0 + self.intra_eff_alpha * max(0, ways - 1))

    def intra_ways(self, flops: float, n_cores: int) -> int:
        by_work = max(1, int(flops // self.min_intra_work))
        return max(1, min(n_cores, self.max_intra, by_work))


class FrameworkCPUEngine:
    """Simulated per-layer-barrier BRNN execution for one framework profile."""

    def __init__(
        self,
        spec: BRNNSpec,
        profile: FrameworkProfile,
        machine: Optional[MachineSpec] = None,
    ) -> None:
        self.spec = spec
        self.profile = profile
        self.machine = machine or xeon_8160_2s()

    @property
    def name(self) -> str:
        return self.profile.name

    # -- graph construction ----------------------------------------------------

    def build_graph(self, seq_len: int, batch: int, n_cores: int, training: bool = True) -> TaskGraph:
        """Annotation-only task graph of one batch under barrier discipline."""
        spec, prof = self.spec, self.profile
        g = TaskGraph()
        rs = RegionSpace()
        isz = np.dtype(spec.dtype).itemsize
        act_bytes = batch * spec.hidden_size * isz * (2 if spec.cell == "lstm" else 1)

        def w_region(layer: int, direction: str):
            (wr, wc), (bn,) = spec.cell_param_shapes(layer)
            region = rs.get(("W", layer, direction), (wr * wc + bn) * isz)
            region.home = INTERLEAVED_HOME  # shared weights: page-interleaved
            return region

        def w_panel(layer: int, direction: str, p: int, ways: int):
            """The 1/ways weight panel an intra-op slice actually reads."""
            (wr, wc), (bn,) = spec.cell_param_shapes(layer)
            region = rs.get(
                ("Wpanel", layer, direction, p, ways), (wr * wc + bn) * isz // ways
            )
            region.home = INTERLEAVED_HOME
            return region

        def act(layer: int, direction: str, t: int, phase: str):
            return rs.get(("act", phase, layer, direction, t), act_bytes, streaming=True)

        def merged(layer: int, t: int, phase: str):
            return rs.get(("m", phase, layer, t), batch * spec.merged_size * isz, streaming=True)

        def add_op(name, kind, flops, hidden, layer, direction, t, phase, extra_in=(), rows=None):
            """One framework op = fork of intra-op subtasks + a join."""
            ways = prof.intra_ways(flops, n_cores)
            eff = prof.gemm_eff(hidden) * prof.intra_eff(ways)
            rows_per_slice = max(1, (rows if rows is not None else batch) // ways)
            w = w_region(layer, direction)
            prev = [act(layer, direction, t - 1, phase)] if t > 0 else []
            if ways == 1:
                # No fork-join: the op is one sequential kernel call.
                g.add_task(
                    f"{name}.p0",
                    None,
                    ins=[w] + prev + list(extra_in),
                    outs=[act(layer, direction, t, phase)],
                    flops=flops / eff,
                    kind=kind,
                    meta={
                        "layer": layer,
                        "dir": direction,
                        "t": t,
                        "reuse": min(6.0, 1.0 + rows_per_slice / 32.0),
                        "extra_overhead_s": prof.op_overhead_s + prof.sync_s,
                    },
                )
                return
            slices = []
            for p in range(ways):
                s = rs.get((name, "slice", p), act_bytes // ways, streaming=True)
                slices.append(s)
                g.add_task(
                    f"{name}.p{p}",
                    None,
                    ins=[w_panel(layer, direction, p, ways)] + prev + list(extra_in),
                    outs=[s],
                    flops=flops / (ways * eff),
                    kind=kind,
                    meta={
                        "layer": layer,
                        "dir": direction,
                        "t": t,
                        "reuse": min(6.0, 1.0 + rows_per_slice / 32.0),
                    },
                )
            g.add_task(
                f"{name}.join",
                None,
                ins=slices,
                outs=[act(layer, direction, t, phase)],
                kind="join",
                meta={
                    "extra_overhead_s": prof.op_overhead_s
                    + prof.sync_s * math.log2(max(2, ways))
                },
            )

        # ---- forward ----------------------------------------------------------
        # §II: a layer runs its forward-order RNN timestep by timestep, THEN
        # its reverse-order RNN, then the merges — the two direction chains
        # are serialised (``dir_gate`` threads the fwd chain's final
        # activation into the rev chain's first op).
        for layer in range(spec.num_layers):
            flops = cell_fwd_flops(spec, batch, layer)
            for direction in ("fwd", "rev"):
                for t in range(seq_len):
                    extra = []
                    if layer > 0:
                        pos = t if direction == "fwd" else seq_len - 1 - t
                        extra = [merged(layer - 1, pos, "fwd")]
                    if direction == "rev" and t == 0:
                        extra = extra + [act(layer, "fwd", seq_len - 1, "fwd")]
                    add_op(
                        f"{prof.name}.f.L{layer}.{direction}.t{t}",
                        "cell",
                        flops,
                        spec.hidden_size,
                        layer,
                        direction,
                        t,
                        "fwd",
                        extra_in=extra,
                    )
            last = spec.num_layers - 1
            n_merge = seq_len if (layer < last or spec.head == "many_to_many") else 1
            for t in range(n_merge):
                g.add_task(
                    f"{prof.name}.merge.L{layer}.t{t}",
                    None,
                    ins=[act(layer, "fwd", t, "fwd"), act(layer, "rev", seq_len - 1 - t, "fwd")],
                    outs=[merged(layer, t, "fwd")],
                    flops=batch * spec.hidden_size,
                    kind="merge",
                    meta={"layer": layer},
                )
            g.barrier(f"{prof.name}.layer_barrier.L{layer}")
            bt = g.tasks[-1]
            bt.meta["extra_overhead_s"] = prof.barrier_s

        if not training:
            return g

        # ---- backward (reverse layer order, same discipline, ~2x flops) -----------
        for layer in range(spec.num_layers - 1, -1, -1):
            flops = cell_bwd_flops(spec, batch, layer)
            for direction in ("fwd", "rev"):
                # u is the position in the backward chain (t = T-1-u); the
                # op at u re-reads the forward activation it differentiates.
                for u in range(seq_len):
                    extra = [act(layer, direction, seq_len - 1 - u, "fwd")]
                    if direction == "rev" and u == 0:
                        extra.append(act(layer, "fwd", seq_len - 1, "bwd"))
                    add_op(
                        f"{prof.name}.b.L{layer}.{direction}.u{u}",
                        "cell_bwd",
                        flops,
                        spec.hidden_size,
                        layer,
                        direction,
                        u,
                        "bwd",
                        extra_in=extra,
                    )
            g.barrier(f"{prof.name}.bwd_barrier.L{layer}")
            g.tasks[-1].meta["extra_overhead_s"] = prof.barrier_s

        # ---- weight update ----------------------------------------------------
        for layer in range(spec.num_layers):
            (wr, wc), (bn,) = spec.cell_param_shapes(layer)
            for direction in ("fwd", "rev"):
                g.add_task(
                    f"{prof.name}.update.L{layer}.{direction}",
                    None,
                    inouts=[w_region(layer, direction)],
                    flops=2.0 * (wr * wc + bn),
                    kind="weight_update",
                    meta={},
                )
        return g

    # -- timing ------------------------------------------------------------------

    def batch_time(
        self,
        seq_len: int,
        batch: int,
        n_cores: Optional[int] = None,
        training: bool = True,
        warm: bool = True,
    ) -> Tuple[float, ExecutionTrace]:
        """Simulated single-batch time in seconds (+ the trace).

        ``warm=True`` runs one untimed batch first so the weight regions are
        NUMA-homed and cached as in a steady-state training loop.
        """
        n_cores = n_cores or self.machine.n_cores
        graph = self.build_graph(seq_len, batch, n_cores, training)
        sim = SimulatedExecutor(self.machine, n_cores=n_cores, scheduler="fifo")
        if warm:
            # Same graph (same regions) so homes/residency carry over.
            sim.run(graph)
        trace = sim.run(graph)
        return trace.makespan + self.profile.batch_fixed_s, trace
