"""Baseline execution models of the paper's comparison frameworks.

These are *execution-discipline* emulations, not reimplementations of
TensorFlow/PyTorch: they run BRNN batches on the same simulated machine as
B-Par but with the per-layer-barrier, intra-op-only parallel structure that
§II attributes to the conventional frameworks, plus calibrated per-op
overheads (DESIGN.md §2).  The GPU columns of Tables III/IV use a
closed-form cuDNN-style cost model.
"""

from repro.baselines.framework import FrameworkCPUEngine, FrameworkProfile
from repro.baselines.keras_like import keras_cpu_profile, KerasCPUEngine
from repro.baselines.pytorch_like import pytorch_cpu_profile, PyTorchCPUEngine
from repro.baselines.gpu_like import GPUFrameworkModel, keras_gpu_model, pytorch_gpu_model

__all__ = [
    "FrameworkProfile",
    "FrameworkCPUEngine",
    "keras_cpu_profile",
    "KerasCPUEngine",
    "pytorch_cpu_profile",
    "PyTorchCPUEngine",
    "GPUFrameworkModel",
    "keras_gpu_model",
    "pytorch_gpu_model",
]
