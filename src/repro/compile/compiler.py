"""The compilation pass: declared graph → :class:`CompiledPlan`.

Two stages, both ahead of execution time:

1. **Transitive reduction** — the dependence tracker derives one edge per
   (region, hazard) pair, so declared graphs carry many redundant edges
   (:mod:`repro.analysis.parallelism` measures ~45 % on the paper-scale
   BLSTM).  Reachability is preserved exactly, so replaying over the
   reduced set enforces every declared dependence while the per-completion
   bookkeeping shrinks accordingly.
2. **List scheduling** — tasks are released by descending *bottom level*
   (longest remaining path to a sink, weighted by the ``simarch`` cost
   model's static duration estimate) onto the earliest-available worker.
   The selection sequence is by construction a topological order of the
   (reduced, hence also the declared) graph, which is what
   :class:`~repro.runtime.scheduler.ReplayScheduler` needs to guarantee
   replay progress; the per-worker assignment and estimated makespan are
   recorded as plan metadata.

Duration estimation deliberately avoids the dynamic :class:`CacheModel`
state: ``overhead + max(compute, mem) + κ·min(compute, mem)`` with the
memory term priced at L3 bandwidth and the per-kind reuse factors of
:data:`repro.simarch.costmodel.DEFAULT_REUSE` — deterministic, stateless,
and accurate enough to rank tasks.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional

from repro.compile.plan import CompiledPlan
from repro.runtime.depgraph import TaskGraph
from repro.runtime.task import Task
from repro.simarch.costmodel import RESIDUAL, CostModel
from repro.simarch.machine import MachineSpec
from repro.simarch.presets import xeon_8160_2s


def estimate_duration(cost_model: CostModel, task: Task) -> float:
    """Static (cache-state-free) duration estimate of one task.

    Same roofline shape as :meth:`CostModel.cost` but with the whole
    working set priced at L3 bandwidth times the kind's reuse factor —
    no residency tracking, so estimating N tasks never perturbs a later
    simulation.
    """
    m = cost_model.machine
    compute = cost_model.compute_time(task)
    reuse = float(task.meta.get("reuse", cost_model.reuse.get(task.kind, 1.0)))
    mem = task.working_set_bytes() * reuse / (m.l3_bw_gbps * 1e9)
    return m.task_overhead_s + max(compute, mem) + RESIDUAL * min(compute, mem)


def compile_graph(
    graph: TaskGraph,
    n_workers: int = 1,
    *,
    machine: Optional[MachineSpec] = None,
    cost_model: Optional[CostModel] = None,
    key: Optional[list] = None,
) -> CompiledPlan:
    """Compile ``graph`` into a static replayable :class:`CompiledPlan`."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    t0 = time.perf_counter()
    cm = cost_model or CostModel(machine or xeon_8160_2s())
    n = len(graph)
    reduced, redundant = graph.transitive_reduction()
    durations = [estimate_duration(cm, t) for t in graph.tasks]

    # Bottom level over the reduced edges (same value as over the declared
    # edges: reduction preserves reachability, hence all longest paths).
    rank = [0.0] * n
    for tid in range(n - 1, -1, -1):
        best = 0.0
        for s in reduced[tid]:
            if rank[s] > best:
                best = rank[s]
        rank[tid] = durations[tid] + best

    indeg = [0] * n
    for succs in reduced:
        for s in succs:
            indeg[s] += 1
    ready = [(-rank[tid], tid) for tid in range(n) if indeg[tid] == 0]
    heapq.heapify(ready)

    core_free = [0.0] * n_workers
    ready_time = [0.0] * n
    order: List[int] = []
    names: List[str] = []
    assignments: List[int] = []
    makespan = 0.0
    while ready:
        _, tid = heapq.heappop(ready)
        core = min(range(n_workers), key=lambda c: (core_free[c], c))
        start = max(core_free[core], ready_time[tid])
        finish = start + durations[tid]
        core_free[core] = finish
        if finish > makespan:
            makespan = finish
        order.append(tid)
        names.append(graph.tasks[tid].name)
        assignments.append(core)
        for s in reduced[tid]:
            if finish > ready_time[s]:
                ready_time[s] = finish
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(ready, (-rank[s], s))

    if len(order) != n:  # pragma: no cover - defensive (graphs are acyclic)
        raise RuntimeError(f"list scheduling placed {len(order)} of {n} tasks")

    n_declared = graph.num_edges()
    n_reduced = sum(len(s) for s in reduced)
    return CompiledPlan(
        order=order,
        names=names,
        assignments=assignments,
        successors=reduced,
        n_workers=n_workers,
        meta={
            "n_tasks": float(n),
            "n_edges_declared": float(n_declared),
            "n_edges_reduced": float(n_reduced),
            "n_edges_redundant": float(len(redundant)),
            "redundant_edge_fraction": (
                len(redundant) / n_declared if n_declared else 0.0
            ),
            "critical_path_s": max(rank) if rank else 0.0,
            "est_makespan_s": makespan,
            "compile_time_s": time.perf_counter() - t0,
        },
        key=key,
    )
