"""Warmup shape enumeration for per-shape compiled-plan caches.

A serving deployment knows, ahead of any traffic, which batch shapes it
will execute: the batcher pads every request to a length bucket and cuts
batches no larger than ``max_batch_size``, so the reachable shape space
is (bucket, batch size) pairs.  ``plan_warmup_shapes`` enumerates the
shapes worth pre-compiling — the full-batch shape per observed bucket,
which is the shape the size trigger cuts under sustained load — so the
fleet can populate its :class:`~repro.compile.cache.PlanCache` before
the first request instead of paying compilation on the hot path
(``InferenceEngine.warmup``, docs/SERVING.md).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def length_buckets(seq_lens: Iterable[int], bucket_width: int) -> List[int]:
    """Distinct padded lengths (ascending) covering ``seq_lens``."""
    if bucket_width < 1:
        raise ValueError("bucket_width must be >= 1")
    return sorted(
        {((s + bucket_width - 1) // bucket_width) * bucket_width for s in seq_lens}
    )


def plan_warmup_shapes(
    seq_lens: Iterable[int],
    bucket_width: int,
    max_batch_size: int,
    batch_sizes: Sequence[int] = (),
) -> List[Tuple[int, int]]:
    """``(padded_len, batch_size)`` shapes to pre-compile for a workload.

    By default one shape per bucket at ``max_batch_size`` (what the size
    trigger cuts at steady state); pass extra ``batch_sizes`` to also warm
    partial-batch shapes (e.g. tail batches under drain).
    """
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be >= 1")
    sizes = sorted({max_batch_size, *batch_sizes})
    for size in sizes:
        if not 1 <= size <= max_batch_size:
            raise ValueError(f"batch size {size} outside [1, {max_batch_size}]")
    return [
        (bucket, size)
        for bucket in length_buckets(seq_lens, bucket_width)
        for size in sizes
    ]
