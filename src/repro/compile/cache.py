"""LRU cache of compiled plans, keyed by ``(config fingerprint, shape)``.

The serving engine asks the cache before building a graph: a hit replays
the stored plan (and, on the threaded substrate, reuses the stored graph
build), a miss falls through to the dynamic path and — depending on the
``compile`` mode — records a freshly compiled plan for the next batch of
that shape.  Counters are exported through :mod:`repro.obs`
(``repro_compile_*`` family) when a registry is attached; the hot path
pays a handful of dict operations per *batch*, never per task.

Entries carry an opaque ``payload`` alongside the plan (the sim engine
stores the memoised ``(service_time, trace)``, the threaded engine the
reusable :class:`~repro.core.graph_builder.GraphBuildResult`).  Payloads
are runtime-only: :meth:`PlanCache.save` persists keys and plans
(``repro.plancache.v1``), so a restarted process re-derives payloads on
first touch but skips recompilation.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.compile.plan import CompiledPlan

CACHE_FORMAT = "repro.plancache.v1"

#: default capacity: serving workloads bucket sequence lengths, so live
#: shape counts stay small; 32 distinct (config, shape) plans is generous
DEFAULT_CAPACITY = 32


@dataclass
class CacheEntry:
    """One cached plan plus the engine's substrate-specific payload."""

    plan: CompiledPlan
    payload: Any = None


def _key_to_json(key: Hashable) -> list:
    fp, shape = key
    return [fp, list(shape)]


def _key_from_json(data: list) -> Tuple[str, tuple]:
    return (data[0], tuple(data[1]))


class PlanCache:
    """LRU map ``(config fingerprint, input shape) → CacheEntry``."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compiles = 0
        self.last_compile_s = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[CacheEntry]:
        """Look up ``key``, counting a hit (and refreshing LRU) or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        self._publish()
        return entry

    def put(self, key: Hashable, plan: CompiledPlan, payload: Any = None) -> CacheEntry:
        """Insert a freshly compiled plan, evicting the LRU entry if full."""
        entry = CacheEntry(plan=plan, payload=payload)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self.compiles += 1
        self.last_compile_s = float(plan.meta.get("compile_time_s", 0.0))
        self._publish()
        return entry

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compiles": self.compiles,
            "size": len(self._entries),
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "last_compile_s": self.last_compile_s,
        }

    def _publish(self) -> None:
        if self.metrics is not None:
            from repro.obs.publish import publish_plan_cache

            publish_plan_cache(self.metrics, self.stats())

    # -- persistence -------------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "format": CACHE_FORMAT,
                "n_entries": len(self._entries),
                "entries": [
                    {
                        "key": _key_to_json(key),
                        "plan": json.loads(entry.plan.to_json()),
                    }
                    for key, entry in self._entries.items()
                ],
            },
            indent=indent,
        )

    def save(self, path: str) -> None:
        """Persist keys and plans (payloads are runtime-only)."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    def load(self, path: str) -> int:
        """Merge persisted plans in (LRU order preserved); returns the count.

        Restored entries carry no payload; a warm-start engine recreates
        its substrate state on first touch but skips recompiling.
        """
        with open(path) as fh:
            data = json.load(fh)
        if data.get("format") != CACHE_FORMAT:
            raise ValueError(f"not a plan cache: format={data.get('format')!r}")
        n = 0
        for item in data["entries"]:
            key = _key_from_json(item["key"])
            plan = CompiledPlan.from_json(json.dumps(item["plan"]))
            entry = CacheEntry(plan=plan)
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            n += 1
        self._publish()
        return n
