"""The compiled-plan artifact: a static schedule of one task graph.

A :class:`CompiledPlan` freezes everything the executors re-derive
dynamically on every invocation:

* the **reduced edge set** — the transitive reduction of the declared
  dependence graph (same reachability, ~45 % fewer edges on the
  paper-scale BLSTM graph per ``BENCH_graph_analysis.json``), so replay
  pays fewer indegree decrements per completion;
* the **release order** — a list-scheduled topological order of the
  reduced graph (priority = bottom-level under the ``simarch`` cost
  model), replayed through the existing
  :class:`~repro.runtime.scheduler.ReplayScheduler`;
* the **core assignments** and the estimated makespan the list scheduler
  produced — metadata for reports, not enforced at replay time (the
  replay scheduler releases the next prescribed task to whichever worker
  asks first, which keeps replay work-conserving).

Plans serialise to JSON (``repro.plan.v1``) so a warm serving process can
persist its plan cache across restarts; :meth:`CompiledPlan.validate`
refuses to replay against a graph whose task count or names drifted from
the plan, mirroring the :class:`~repro.runtime.scheduler.ScheduleRecord`
name-check contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.depgraph import TaskGraph
from repro.runtime.scheduler import ScheduleRecord

#: serialization format tag (bump on incompatible layout changes)
PLAN_FORMAT = "repro.plan.v1"


@dataclass
class CompiledPlan:
    """A static execution plan for one task graph.

    ``order``/``names`` follow :class:`ScheduleRecord` conventions:
    ``order[i]`` is the tid released at step ``i`` and ``names[i]`` its
    task name (the drift guard).  ``assignments[i]`` is the core the list
    scheduler placed step ``i`` on.  ``successors`` is the transitive
    reduction's successor list, indexed by tid.
    """

    order: List[int]
    names: List[str]
    assignments: List[int]
    successors: List[List[int]]
    n_workers: int = 1
    meta: Dict[str, float] = field(default_factory=dict)
    #: provenance cache key ``[config_fingerprint, [padded_len, batch]]``
    key: Optional[list] = None
    format: str = PLAN_FORMAT

    @property
    def n_tasks(self) -> int:
        return len(self.order)

    def n_edges(self) -> int:
        """Edges replay actually manages (the reduced set)."""
        return sum(len(s) for s in self.successors)

    def indegree(self) -> List[int]:
        """Fresh per-run indegree counters over the reduced edge set."""
        indeg = [0] * len(self.successors)
        for succs in self.successors:
            for s in succs:
                indeg[s] += 1
        return indeg

    def validate(self, graph: TaskGraph) -> None:
        """Refuse to replay against a graph the plan was not compiled for.

        Checks the task count and every (tid, name) pair — the same
        contract :class:`~repro.runtime.scheduler.ReplayScheduler`
        enforces lazily at pop time, applied up front so a stale cached
        plan fails before any payload runs.
        """
        if len(graph) != len(self.order):
            raise ValueError(
                f"plan covers {len(self.order)} tasks, graph has {len(graph)}"
            )
        if len(self.successors) != len(graph):
            raise ValueError(
                f"plan edge set covers {len(self.successors)} tasks, "
                f"graph has {len(graph)}"
            )
        for i, tid in enumerate(self.order):
            if not 0 <= tid < len(graph):
                raise ValueError(f"plan order names unknown tid {tid}")
            if graph.tasks[tid].name != self.names[i]:
                raise ValueError(
                    f"plan mismatch at step {i}: compiled {self.names[i]!r}, "
                    f"graph has {graph.tasks[tid].name!r} (tid {tid})"
                )

    def to_schedule_record(self) -> ScheduleRecord:
        """The plan's release order as replayable schedule-record machinery."""
        return ScheduleRecord(
            order=list(self.order), names=list(self.names), scheduler="compiled"
        )

    def without_edge(self, a: int, b: int) -> "CompiledPlan":
        """A copy of this plan with reduced edge ``a → b`` deleted.

        Every edge of a transitive reduction is order-defining (no
        parallel path exists, by minimality), so the copy must fail
        :func:`~repro.runtime.racecheck.check_plan`'s closure audit —
        the mutation the verifier's plan-soundness self-test seeds.
        """
        if b not in self.successors[a]:
            raise ValueError(f"plan has no edge {a} → {b}")
        successors = [list(s) for s in self.successors]
        successors[a].remove(b)
        return CompiledPlan(
            order=list(self.order),
            names=list(self.names),
            assignments=list(self.assignments),
            successors=successors,
            n_workers=self.n_workers,
            meta=dict(self.meta),
            key=self.key,
        )

    # -- serialization -----------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "format": self.format,
                "n_tasks": self.n_tasks,
                "n_workers": self.n_workers,
                "order": self.order,
                "names": self.names,
                "assignments": self.assignments,
                "successors": self.successors,
                "meta": self.meta,
                "key": self.key,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "CompiledPlan":
        data = json.loads(text)
        if data.get("format") != PLAN_FORMAT:
            raise ValueError(f"not a compiled plan: format={data.get('format')!r}")
        plan = cls(
            order=list(data["order"]),
            names=list(data["names"]),
            assignments=list(data["assignments"]),
            successors=[list(s) for s in data["successors"]],
            n_workers=int(data.get("n_workers", 1)),
            meta=dict(data.get("meta", {})),
            key=data.get("key"),
        )
        if len(plan.names) != len(plan.order) or len(plan.assignments) != len(plan.order):
            raise ValueError("plan order/names/assignments lengths disagree")
        return plan

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "CompiledPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())
