"""Graph compilation and cached plan replay (docs/COMPILE.md).

``compile_graph`` turns a built :class:`~repro.runtime.depgraph.TaskGraph`
into a :class:`CompiledPlan` — transitive-reduced edge set plus a
list-scheduled release order priced by the ``simarch`` cost model — that
both executors replay without re-resolving dependences per batch.
``PlanCache`` memoises plans per ``(ExecutionConfig fingerprint, input
shape)`` for the serving hot path (``ExecutionConfig(compile="on"|"auto")``).
"""

from repro.compile.cache import CacheEntry, PlanCache
from repro.compile.compiler import compile_graph, estimate_duration
from repro.compile.plan import PLAN_FORMAT, CompiledPlan
from repro.compile.warmup import length_buckets, plan_warmup_shapes

__all__ = [
    "CacheEntry",
    "CompiledPlan",
    "PLAN_FORMAT",
    "PlanCache",
    "compile_graph",
    "estimate_duration",
    "length_buckets",
    "plan_warmup_shapes",
]
