"""Task and data-region primitives.

A :class:`Task` is a sequential piece of work (in B-Par, the update of one
RNN cell) plus the set of data :class:`Region` objects it reads and writes.
Regions play the role of the ``c_f[...]`` / ``c_r[...]`` addresses that the
paper's ``#pragma omp task in(...) out(...)`` annotations name: the runtime
never inspects array contents, it only matches region identities to derive
dependences.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Tuple


#: sentinel ``Region.home`` value: pages interleaved across sockets
INTERLEAVED_HOME = -1


class AccessMode(enum.Enum):
    """How a task accesses a region (mirrors OmpSs ``in``/``out``/``inout``)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


class Region:
    """A named piece of data tracked by the dependency system.

    Parameters
    ----------
    key:
        Hashable identity, e.g. ``("hf", mb, layer, t)``.  Two tasks touch
        "the same data" iff their region keys are equal.
    nbytes:
        Size of the region in bytes.  Used by the simulated machine's cache
        model and by working-set accounting; irrelevant for correctness.
    home:
        NUMA home socket (first-touch).  ``None`` until first written on the
        simulated machine; ``INTERLEAVED_HOME`` for page-interleaved
        allocations (shared read-mostly data such as layer weights).
    streaming:
        Use-once data (per-timestep activations, caches, gradients-in-
        flight).  The cache model inserts such regions scan-resistantly so
        they do not evict the reused working set (weights), mirroring the
        adaptive-insertion policies of real LLCs.
    """

    __slots__ = ("key", "nbytes", "home", "streaming")

    def __init__(
        self,
        key: Hashable,
        nbytes: int = 0,
        home: Optional[int] = None,
        streaming: bool = False,
    ):
        self.key = key
        self.nbytes = int(nbytes)
        self.home = home
        self.streaming = streaming

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.key!r}, nbytes={self.nbytes})"


class RegionSpace:
    """Interning table for regions so each key maps to one object.

    Graph builders ask the space for regions by key; the first request fixes
    the region's size.  Sharing one object per key lets the cache model and
    the dependency tracker agree on identity without hashing large tuples
    repeatedly.
    """

    def __init__(self) -> None:
        self._regions: Dict[Hashable, Region] = {}

    def get(self, key: Hashable, nbytes: int = 0, streaming: bool = False) -> Region:
        """Return the region for ``key``, creating it on first use."""
        region = self._regions.get(key)
        if region is None:
            region = Region(key, nbytes, streaming=streaming)
            self._regions[key] = region
        elif nbytes and not region.nbytes:
            region.nbytes = int(nbytes)
        return region

    def __len__(self) -> int:
        return len(self._regions)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._regions

    def regions(self) -> Iterable[Region]:
        return self._regions.values()

    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self._regions.values())


class Task:
    """A sequential unit of work with explicit data dependences.

    ``fn`` may be ``None`` for purely-simulated graphs (timing studies that
    never execute numerics).  ``flops`` and the region sizes feed the
    simulated-machine cost model; they do not affect the threaded executor.
    """

    __slots__ = (
        "tid",
        "name",
        "fn",
        "ins",
        "outs",
        "inouts",
        "flops",
        "kind",
        "meta",
        "_regions",
        "_region_ids",
    )

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[], None]] = None,
        ins: Iterable[Region] = (),
        outs: Iterable[Region] = (),
        inouts: Iterable[Region] = (),
        flops: float = 0.0,
        kind: str = "task",
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tid: int = -1  # assigned by TaskGraph.add
        self.name = name
        self.fn = fn
        self.ins: Tuple[Region, ...] = tuple(ins)
        self.outs: Tuple[Region, ...] = tuple(outs)
        self.inouts: Tuple[Region, ...] = tuple(inouts)
        self.flops = float(flops)
        self.kind = kind
        self.meta = meta or {}
        self._regions: Optional[Tuple[Region, ...]] = None
        self._region_ids: Optional[frozenset] = None

    # -- derived views -----------------------------------------------------

    def reads(self) -> Tuple[Region, ...]:
        """Regions the task reads (``in`` + ``inout``)."""
        return self.ins + self.inouts

    def writes(self) -> Tuple[Region, ...]:
        """Regions the task writes (``out`` + ``inout``)."""
        return self.outs + self.inouts

    def regions(self) -> Tuple[Region, ...]:
        """All regions the task touches, without duplicates (cached)."""
        if self._regions is None:
            seen = {}
            for r in self.ins + self.outs + self.inouts:
                seen[id(r)] = r
            self._regions = tuple(seen.values())
        return self._regions

    def region_ids(self) -> frozenset:
        """Identity set of the task's regions (cached; for overlap tests)."""
        if self._region_ids is None:
            self._region_ids = frozenset(id(r) for r in self.regions())
        return self._region_ids

    def working_set_bytes(self) -> int:
        """Bytes of data this task touches (the paper's per-task WSS)."""
        return sum(r.nbytes for r in self.regions())

    def run(self) -> None:
        """Execute the payload (no-op for simulation-only tasks)."""
        if self.fn is not None:
            self.fn()

    def shares_data_with(self, other: "Task") -> bool:
        """True when the two tasks touch at least one common region."""
        return not self.region_ids().isdisjoint(other.region_ids())

    def access_mode(self, region: Region) -> Optional[AccessMode]:
        """Declared mode for ``region`` (``None`` when undeclared).

        ``inout`` wins over a duplicate ``in``/``out`` listing; the race
        checker uses this to phrase findings in OmpSs vocabulary.
        """
        rid = id(region)
        if any(id(r) == rid for r in self.inouts):
            return AccessMode.INOUT
        if any(id(r) == rid for r in self.outs):
            return AccessMode.OUT
        if any(id(r) == rid for r in self.ins):
            return AccessMode.IN
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.tid}, {self.name!r}, kind={self.kind})"
