"""POSIX shared-memory arenas backing cross-process region transfer.

The multiprocess executor (:mod:`repro.runtime.mpexec`) never sends array
payloads over its pipes — only task ids and *region slot descriptors*.  A
:class:`ShmArena` is the thing a descriptor points into: one
``multiprocessing.shared_memory`` segment plus a block allocator, created
by the manager process **before** the workers fork so every process maps
the same pages without an attach round-trip.

Lifecycle invariants (enforced by ``tests/properties/test_shm_arena.py``
and the fault-injection suite):

* blocks handed out by :meth:`alloc` never overlap while live;
* :meth:`put_array`/:meth:`get_array` round-trip dtype, shape, and bytes
  exactly, from the creating process and from a forked child alike;
* the creating process owns the name: :meth:`destroy` always removes the
  ``/dev/shm`` entry, even when child processes crashed while mapped
  (``unlink`` only drops the name — crashed mappings are reclaimed by the
  kernel when the last map goes away, so no segment can leak).

Allocation is first-fit over a sorted free list with coalescing on
:meth:`free` — O(blocks), which is fine at the executor's scale (one
block per exported region slot).  Blocks are 64-byte aligned so shm-backed
array views keep the alignment NumPy's own allocator provides.
"""

from __future__ import annotations

import itertools
import os
import pickle
from bisect import insort
from multiprocessing import shared_memory
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

#: block alignment (bytes) — matches NumPy's allocator so shm-backed views
#: see the same alignment as heap arrays
ALIGNMENT = 64

#: ``/dev/shm`` name prefix of every arena segment; the fault-injection
#: tests and the bench leak check filter listings on this
SEGMENT_PREFIX = "repro_mp"

_COUNTER = itertools.count()


class ArenaExhausted(RuntimeError):
    """An :meth:`ShmArena.alloc` request did not fit the segment."""


class ShmBlock(NamedTuple):
    """A slot descriptor: which segment, where, how many bytes.

    This is the *only* array-shaped thing the executor's pipes ever carry.
    """

    segment: str
    offset: int
    nbytes: int


class ArrayDesc(NamedTuple):
    """A :class:`ShmBlock` plus the dtype/shape to rebuild the array."""

    block: ShmBlock
    dtype: str
    shape: Tuple[int, ...]


def _align(n: int) -> int:
    return (max(1, n) + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def list_segments() -> List[str]:
    """Current ``/dev/shm`` entries created by this module (leak probe)."""
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX))
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return []


class ShmArena:
    """One shared-memory segment plus a first-fit block allocator.

    Create in the parent (``ShmArena(capacity)``); forked children inherit
    the mapping and use the same object.  A *separate* process (not forked
    from the creator) can map an existing segment with :meth:`attach`,
    which supports reads/writes through descriptors but does not own the
    name (``unlink`` stays the creator's job).
    """

    def __init__(self, capacity: int, *, name: Optional[str] = None) -> None:
        self.capacity = _align(capacity)
        if name is None:
            name = f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_COUNTER)}"
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=self.capacity
        )
        self._owner = True
        self._free: List[Tuple[int, int]] = [(0, self.capacity)]  # (offset, size)
        self._live: Dict[int, int] = {}  # offset -> padded size
        self._closed = False

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Map an existing segment by name (non-owning: no ``unlink``)."""
        arena = cls.__new__(cls)
        arena._shm = shared_memory.SharedMemory(name=name)
        arena.capacity = arena._shm.size
        arena._owner = False
        arena._free = []
        arena._live = {}
        arena._closed = False
        return arena

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def allocated_bytes(self) -> int:
        return sum(self._live.values())

    def live_blocks(self) -> List[Tuple[int, int]]:
        """``(offset, padded_size)`` of every live block (test probe)."""
        return sorted(self._live.items())

    # -- block allocation ----------------------------------------------------

    def alloc(self, nbytes: int) -> ShmBlock:
        """First-fit allocate ``nbytes`` (rounded up to the alignment)."""
        need = _align(nbytes)
        for i, (off, size) in enumerate(self._free):
            if size >= need:
                if size == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, size - need)
                self._live[off] = need
                return ShmBlock(self.name, off, nbytes)
        raise ArenaExhausted(
            f"arena {self.name}: alloc({nbytes}) does not fit "
            f"({self.allocated_bytes}/{self.capacity} bytes allocated)"
        )

    def free(self, block: ShmBlock) -> None:
        """Return a block; adjacent free ranges coalesce."""
        if block.segment != self.name:
            raise ValueError(f"block belongs to segment {block.segment!r}, not {self.name!r}")
        size = self._live.pop(block.offset, None)
        if size is None:
            raise ValueError(f"double free or unknown block at offset {block.offset}")
        insort(self._free, (block.offset, size))
        merged: List[Tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self._free = merged

    # -- typed transfers -----------------------------------------------------

    def write_bytes(self, data: bytes) -> ShmBlock:
        block = self.alloc(len(data))
        self._shm.buf[block.offset : block.offset + len(data)] = data
        return block

    def read_bytes(self, block: ShmBlock) -> bytes:
        return bytes(self._shm.buf[block.offset : block.offset + block.nbytes])

    def put_array(self, arr: np.ndarray) -> ArrayDesc:
        """Copy ``arr`` into the segment; the descriptor rebuilds it exactly."""
        src = np.asarray(arr)
        # ascontiguousarray promotes 0-d to 1-d; keep the caller's shape.
        a = np.ascontiguousarray(src)
        block = self.alloc(a.nbytes)
        desc = ArrayDesc(block, a.dtype.str, src.shape)
        self.view_array(desc)[...] = a.reshape(src.shape)
        return desc

    def view_array(self, desc: ArrayDesc) -> np.ndarray:
        """Zero-copy array view over a descriptor's block."""
        return np.ndarray(
            desc.shape, dtype=np.dtype(desc.dtype), buffer=self._shm.buf,
            offset=desc.block.offset,
        )

    def get_array(self, desc: ArrayDesc, *, copy: bool = True) -> np.ndarray:
        """The array a descriptor names; ``copy=False`` aliases the segment."""
        view = self.view_array(desc)
        return view.copy() if copy else view

    def put_pickle(self, obj) -> ShmBlock:
        """Pickle ``obj`` into the segment (arbitrary region payloads)."""
        return self.write_bytes(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))

    def get_pickle(self, block: ShmBlock):
        return pickle.loads(self.read_bytes(block))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (idempotent).

        Zero-copy views from :meth:`view_array`/:meth:`get_array(copy=False)`
        must not be dereferenced after this — depending on how the buffer
        export chain resolved, the unmap may succeed underneath them.  The
        executor copies everything it needs out of the arena before its
        cleanup epilogue for exactly this reason.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # Live array views still point into the mapping; the kernel
            # reclaims the pages when they go away.  The *name* is what
            # must not leak, and unlink below does not need the map closed.
            pass

    def unlink(self) -> None:
        """Remove the ``/dev/shm`` name (owner only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._owner = False

    def destroy(self) -> None:
        """``close`` + ``unlink`` — the guaranteed-cleanup epilogue."""
        self.close()
        self.unlink()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()
