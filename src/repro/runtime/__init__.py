"""OmpSs-like tasking substrate.

This package provides the run-time system that B-Par is built on: tasks
annotated with ``in``/``out``/``inout`` data regions, a dependency tracker
that turns a sequential stream of task registrations into a DAG (the exact
semantics of OmpSs/OpenMP task dependences), ready-queue schedulers
(FIFO breadth-first, locality-aware, LIFO), and two executors:

* :class:`~repro.runtime.executor.ThreadedExecutor` — real worker threads.
  RNN-cell tasks are dominated by NumPy GEMMs, which release the GIL, so
  coarse-grained tasks genuinely overlap on a multi-core host.
* :class:`~repro.runtime.simexec.SimulatedExecutor` — a deterministic
  discrete-event executor over a modelled machine
  (:mod:`repro.simarch`).  It reproduces the scheduling, cache-locality
  and NUMA behaviour of the paper's 48-core platform, which the GIL and
  a laptop-scale host cannot express directly.
* :class:`~repro.runtime.mpexec.MultiprocessExecutor` — pinned worker
  *processes* over POSIX shared memory (:mod:`repro.runtime.shm`): true
  parallelism for the fine-grained task modes the GIL serialises.  The
  substrate contract all of these implement is named by
  :class:`~repro.runtime.protocol.Executor` (docs/EXECUTORS.md).
"""

from repro.runtime.task import AccessMode, Region, RegionSpace, Task
from repro.runtime.depgraph import TaskGraph, descendants_bitsets
from repro.runtime.scheduler import (
    FIFOScheduler,
    FuzzScheduler,
    LIFOScheduler,
    LocalityAwareScheduler,
    RecordingScheduler,
    ReplayScheduler,
    ScheduleRecord,
    Scheduler,
    WorkStealingScheduler,
    make_scheduler,
    resolve_scheduler,
)
from repro.runtime.trace import ExecutionTrace, TaskRecord
from repro.runtime.executor import SerialExecutor, ThreadedExecutor
from repro.runtime.simexec import SimulatedExecutor
from repro.runtime.protocol import Executor, ExecutorError, WorkerCrashError
from repro.runtime.mpexec import MultiprocessExecutor, plan_placement
from repro.runtime.shm import ArenaExhausted, ArrayDesc, ShmArena, ShmBlock
from repro.runtime.racecheck import (
    RaceError,
    RaceFinding,
    RaceReport,
    check_build,
    fuzz_equivalence_sweep,
    mutation_probe,
    order_defining_edges,
    ordering_findings,
    record_schedule,
    replay_schedule,
)

__all__ = [
    "AccessMode",
    "Region",
    "RegionSpace",
    "Task",
    "TaskGraph",
    "descendants_bitsets",
    "Scheduler",
    "FIFOScheduler",
    "LIFOScheduler",
    "LocalityAwareScheduler",
    "WorkStealingScheduler",
    "FuzzScheduler",
    "RecordingScheduler",
    "ReplayScheduler",
    "ScheduleRecord",
    "make_scheduler",
    "resolve_scheduler",
    "ExecutionTrace",
    "TaskRecord",
    "SerialExecutor",
    "ThreadedExecutor",
    "SimulatedExecutor",
    "MultiprocessExecutor",
    "plan_placement",
    "Executor",
    "ExecutorError",
    "WorkerCrashError",
    "ShmArena",
    "ShmBlock",
    "ArrayDesc",
    "ArenaExhausted",
    "RaceError",
    "RaceFinding",
    "RaceReport",
    "check_build",
    "fuzz_equivalence_sweep",
    "mutation_probe",
    "order_defining_edges",
    "ordering_findings",
    "record_schedule",
    "replay_schedule",
]
