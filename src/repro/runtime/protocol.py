"""The executor protocol: what every execution substrate implements.

The engines (:class:`~repro.core.bpar.BParEngine`,
:class:`~repro.core.bseq.BSeqEngine`,
:class:`~repro.serve.engine.InferenceEngine`) are substrate-agnostic: they
hold "an executor" and call :meth:`Executor.run`.  This module names that
contract — extracted from the original thread-only implementation so the
multiprocess substrate (:mod:`repro.runtime.mpexec`) could be added with
zero engine changes — and the error vocabulary shared across substrates.

Implementations: :class:`~repro.runtime.executor.SerialExecutor`,
:class:`~repro.runtime.executor.ThreadedExecutor`,
:class:`~repro.runtime.simexec.SimulatedExecutor`,
:class:`~repro.runtime.mpexec.MultiprocessExecutor`.  See
``docs/EXECUTORS.md`` for the substrate comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # typing only — no runtime import cycle
    from repro.compile.plan import CompiledPlan
    from repro.runtime.depgraph import TaskGraph
    from repro.runtime.trace import ExecutionTrace


@runtime_checkable
class Executor(Protocol):
    """A thing that executes task graphs.

    ``n_workers`` is the concurrency width (threads, processes, or
    simulated cores); :meth:`run` executes every task of ``graph``
    respecting its dependences and returns the
    :class:`~repro.runtime.trace.ExecutionTrace`.  ``plan`` — a
    :class:`~repro.compile.plan.CompiledPlan` for this exact graph —
    replays a compiled release order instead of resolving dependences
    dynamically; substrates that support serving warm shapes must honour
    it (``SerialExecutor``, which predates compilation, does not).
    """

    n_workers: int

    def run(
        self, graph: "TaskGraph", plan: Optional["CompiledPlan"] = None
    ) -> "ExecutionTrace":  # pragma: no cover - protocol signature
        ...


class ExecutorError(RuntimeError):
    """Base class for substrate-level execution failures (as opposed to
    payload exceptions, which every substrate re-raises unchanged)."""


class WorkerCrashError(ExecutorError):
    """A worker process died without reporting a result.

    Raised by :class:`~repro.runtime.mpexec.MultiprocessExecutor` when a
    worker's process sentinel fires mid-run (SIGKILL, OOM-kill, hard
    crash).  Names the worker and the in-flight task so the failure is
    attributable; the executor guarantees the remaining workers are torn
    down and every shared-memory segment is unlinked before this
    propagates.
    """

    def __init__(self, worker: int, pid: Optional[int], task_name: Optional[str]) -> None:
        self.worker = worker
        self.pid = pid
        self.task_name = task_name
        doing = f"while running task {task_name!r}" if task_name else "while idle"
        super().__init__(f"worker {worker} (pid {pid}) died {doing}")
