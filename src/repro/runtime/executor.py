"""Executors that actually run task payloads.

:class:`SerialExecutor` runs the graph in registration order on one core —
the reference schedule used in correctness tests.

:class:`ThreadedExecutor` is the real-concurrency engine: ``n_workers``
threads pull from a shared scheduler under a lock.  RNN-cell payloads are
GEMM-dominated NumPy calls that release the GIL, so tasks overlap for real
on a multi-core host.  Dataflow determinism holds regardless of
interleaving: a task only ever reads regions whose writers completed, so
results are bitwise identical to the serial schedule.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.obs.hooks import ProfilingHooks
from repro.obs.publish import publish_run
from repro.obs.registry import MetricsRegistry
from repro.runtime.depgraph import TaskGraph
from repro.runtime.scheduler import (
    LocalityAwareScheduler,
    ReplayScheduler,
    Scheduler,
    resolve_scheduler,
)
from repro.runtime.task import Task
from repro.runtime.trace import ExecutionTrace, TaskRecord

SchedulerFactory = Callable[[int], Scheduler]


#: minimum fraction of the successor's working set that must overlap the
#: completed task's data for an affinity hint to be worth issuing — pinning
#: a multi-megabyte cell task to a core because it consumes one small
#: activation would collapse independent chains onto one core.
HINT_MIN_SHARED_FRACTION = 0.25


def locality_hint(completed: Task, successor: Task, core: int) -> Optional[int]:
    """Core hint for a successor that became ready when ``completed`` finished.

    Implements the paper's locality mechanism: run the successor on the
    same core as its predecessor when a *substantial* part of the
    successor's working set (e.g. the layer's weights, not just one small
    activation) was touched by the predecessor.
    """
    if not successor.shares_data_with(completed):
        return None
    ws = min(successor.working_set_bytes(), completed.working_set_bytes())
    if ws <= 0:
        return core
    completed_ids = completed.region_ids()
    shared = sum(r.nbytes for r in successor.regions() if id(r) in completed_ids)
    return core if shared >= HINT_MIN_SHARED_FRACTION * ws else None


class SerialExecutor:
    """Run tasks one by one in registration (topological) order."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        hooks: Optional[ProfilingHooks] = None,
    ) -> None:
        self.n_workers = 1
        self.metrics = metrics
        self.hooks = hooks

    def run(self, graph: TaskGraph) -> ExecutionTrace:
        trace = ExecutionTrace(n_cores=1, scheduler="serial")
        hooks = self.hooks
        now = 0.0
        for task in graph:
            if hooks is not None:
                hooks.on_task_start(task, 0, now)
            t0 = time.perf_counter()
            task.run()
            dur = time.perf_counter() - t0
            trace.records.append(
                TaskRecord(
                    tid=task.tid,
                    name=task.name,
                    kind=task.kind,
                    core=0,
                    start=now,
                    end=now + dur,
                    flops=task.flops,
                    wss_bytes=task.working_set_bytes(),
                )
            )
            now += dur
            if hooks is not None:
                hooks.on_task_end(task, 0, now)
        publish_run(self.metrics, trace)
        return trace


class ThreadedExecutor:
    """Pool of worker threads draining a dependence-aware ready queue.

    ``scheduler_factory`` may be a factory callable, a policy name
    (``"fifo"``/``"fuzz:7"``/…), or a ready :class:`Scheduler` instance —
    the latter lets the race-checking harness inject a primed
    ``RecordingScheduler``/``ReplayScheduler`` (single-use: pass a fresh
    instance per ``run``).
    """

    def __init__(
        self,
        n_workers: int,
        scheduler_factory: SchedulerFactory = LocalityAwareScheduler,
        metrics: Optional[MetricsRegistry] = None,
        hooks: Optional[ProfilingHooks] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._scheduler_factory = scheduler_factory
        self.metrics = metrics
        self.hooks = hooks

    def run(self, graph: TaskGraph, plan=None) -> ExecutionTrace:
        """Execute ``graph``; with ``plan`` (a compiled
        :class:`~repro.compile.plan.CompiledPlan`) replay its static
        release order over the transitive-reduced edge set instead of
        resolving dependences dynamically — fewer indegree decrements per
        completion and no locality-hint computation per wake-up."""
        if plan is not None:
            plan.validate(graph)
            scheduler = ReplayScheduler(plan.to_schedule_record(), self.n_workers)
            successors = plan.successors
            indegree = plan.indegree()
        else:
            scheduler = resolve_scheduler(self._scheduler_factory, self.n_workers)
            successors = graph.successors
            indegree = list(graph.indegree)
        scheduler.hooks = self.hooks
        hooks = self.hooks
        trace = ExecutionTrace(
            n_cores=self.n_workers, scheduler=getattr(scheduler, "name", "?")
        )
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        remaining = len(graph.tasks)
        errors: list = []
        replay = plan is not None
        epoch = time.perf_counter()

        if replay:
            # Roots are identical under transitive reduction (a redundant
            # edge into t implies another retained path into t).
            for tid, deg in enumerate(indegree):
                if deg == 0:
                    scheduler.push(graph.tasks[tid])
        else:
            for task in graph.roots():
                scheduler.push(task)

        def worker(core: int) -> None:
            nonlocal remaining
            while True:
                with lock:
                    while True:
                        if remaining == 0 or errors:
                            work_available.notify_all()
                            return
                        try:
                            task = scheduler.pop(core)
                        except BaseException as exc:  # e.g. replay mismatch
                            errors.append(exc)
                            work_available.notify_all()
                            return
                        if task is not None:
                            break
                        work_available.wait()
                start = time.perf_counter() - epoch
                if hooks is not None:
                    hooks.on_task_start(task, core, start)
                try:
                    task.run()
                except BaseException as exc:  # surface payload failures
                    with lock:
                        errors.append(exc)
                        work_available.notify_all()
                    return
                end = time.perf_counter() - epoch
                if hooks is not None:
                    hooks.on_task_end(task, core, end)
                with lock:
                    trace.records.append(
                        TaskRecord(
                            tid=task.tid,
                            name=task.name,
                            kind=task.kind,
                            core=core,
                            start=start,
                            end=end,
                            flops=task.flops,
                            wss_bytes=task.working_set_bytes(),
                        )
                    )
                    remaining -= 1
                    woke = 0
                    for succ_tid in successors[task.tid]:
                        indegree[succ_tid] -= 1
                        if indegree[succ_tid] == 0:
                            succ = graph.tasks[succ_tid]
                            hint = None if replay else locality_hint(task, succ, core)
                            scheduler.push(succ, hint=hint)
                            woke += 1
                    if woke or remaining == 0:
                        work_available.notify_all()

        threads = [
            threading.Thread(target=worker, args=(c,), daemon=True)
            for c in range(self.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        if remaining != 0:  # pragma: no cover - defensive deadlock check
            raise RuntimeError(f"executor finished with {remaining} unexecuted tasks")
        trace.scheduler_counters = scheduler.counters
        publish_run(self.metrics, trace, scheduler.counters, trace.scheduler)
        return trace
