"""Execution traces and derived statistics.

Both executors emit an :class:`ExecutionTrace`: one :class:`TaskRecord`
per task with placement and timing.  The analysis modules
(:mod:`repro.analysis`) and the Fig. 7 metrics derive everything —
concurrency profiles, per-core utilisation, task-granularity and
working-set statistics — from this single structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


def percentile(values: Sequence[float], p: float) -> float:
    """Linearly-interpolated percentile of ``values`` (NumPy's default method).

    Kept dependency-free so latency collectors (``repro.serve``) and trace
    summaries share one definition of p50/p95/p99.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(values) == 0:
        raise ValueError("percentile of an empty sequence")
    xs = sorted(values)
    rank = (len(xs) - 1) * p / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(xs[lo])
    return float(xs[lo] + (xs[hi] - xs[lo]) * (rank - lo))


@dataclass
class TaskRecord:
    """Timing record of one executed task."""

    tid: int
    name: str
    kind: str
    core: int
    start: float
    end: float
    flops: float = 0.0
    wss_bytes: int = 0
    # Simulated-machine extras (zero for the threaded executor):
    instructions: float = 0.0
    l3_miss_bytes: int = 0
    remote_miss_bytes: int = 0
    overhead: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """All task records of one graph execution plus summary helpers."""

    n_cores: int
    records: List[TaskRecord] = field(default_factory=list)
    scheduler: str = ""

    # -- basic aggregates ---------------------------------------------------

    @property
    def makespan(self) -> float:
        if not self.records:
            return 0.0
        t0 = min(r.start for r in self.records)
        t1 = max(r.end for r in self.records)
        return t1 - t0

    @property
    def total_task_time(self) -> float:
        return sum(r.duration for r in self.records)

    @property
    def total_overhead(self) -> float:
        """Runtime overhead (creation/scheduling/synchronisation) summed."""
        return sum(r.overhead for r in self.records)

    def num_tasks(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind == kind)

    def execution_order(self) -> List[int]:
        """Task tids in dispatch order (start time, record order on ties).

        On a single-worker executor this is exactly the scheduler's pop
        order, which lets schedule-replay tests compare an execution
        against a recorded :class:`~repro.runtime.scheduler.ScheduleRecord`.
        """
        indexed = sorted(
            range(len(self.records)), key=lambda i: (self.records[i].start, i)
        )
        return [self.records[i].tid for i in indexed]

    def core_busy_time(self) -> Dict[int, float]:
        busy: Dict[int, float] = {c: 0.0 for c in range(self.n_cores)}
        for r in self.records:
            busy[r.core] = busy.get(r.core, 0.0) + r.duration
        return busy

    def parallel_efficiency(self) -> float:
        """busy-time / (cores × makespan); 1.0 means no idle cycles."""
        span = self.makespan
        if span <= 0 or self.n_cores == 0:
            return 1.0
        return self.total_task_time / (self.n_cores * span)

    # -- concurrency profile --------------------------------------------------

    def concurrency_profile(self) -> List[Tuple[float, int]]:
        """Piecewise-constant number of running tasks over time.

        Returns ``[(t, n), ...]`` meaning *n* tasks run from ``t`` until the
        next breakpoint.
        """
        events: List[Tuple[float, int]] = []
        for r in self.records:
            events.append((r.start, 1))
            events.append((r.end, -1))
        events.sort()
        profile: List[Tuple[float, int]] = []
        n = 0
        for t, delta in events:
            n += delta
            if profile and profile[-1][0] == t:
                profile[-1] = (t, n)
            else:
                profile.append((t, n))
        return profile

    def average_concurrency(self) -> float:
        """Time-weighted mean number of simultaneously running tasks."""
        profile = self.concurrency_profile()
        if len(profile) < 2:
            return float(bool(self.records))
        area = 0.0
        for (t0, n), (t1, _) in zip(profile, profile[1:]):
            area += n * (t1 - t0)
        span = profile[-1][0] - profile[0][0]
        return area / span if span > 0 else 0.0

    def peak_concurrency(self) -> int:
        profile = self.concurrency_profile()
        return max((n for _, n in profile), default=0)

    # -- granularity -----------------------------------------------------------

    def durations(self, kind: Optional[str] = None) -> List[float]:
        return [r.duration for r in self.records if kind is None or r.kind == kind]

    def duration_percentile(self, p: float, kind: Optional[str] = None) -> float:
        """The ``p``-th percentile of task durations (optionally one kind)."""
        return percentile(self.durations(kind), p)

    def duration_percentiles(
        self, ps: Sequence[float] = (50, 95, 99), kind: Optional[str] = None
    ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` of task durations.

        Keys are formatted ``p<value>`` (``p99.9`` for fractional points) so
        the dict drops straight into JSON reports.
        """
        xs = self.durations(kind)
        return {f"p{p:g}": percentile(xs, p) for p in ps}

    def summary(self) -> Dict[str, float]:
        """One-stop statistics dict: end-to-end and task-duration figures.

        Benchmarks should consume this (or :meth:`duration_percentiles`)
        instead of re-deriving percentiles from raw records.
        """
        out: Dict[str, float] = {
            "num_tasks": float(len(self.records)),
            "makespan_s": self.makespan,
            "total_task_time_s": self.total_task_time,
            "total_overhead_s": self.total_overhead,
            "parallel_efficiency": self.parallel_efficiency(),
            "average_concurrency": self.average_concurrency(),
        }
        if self.records:
            xs = self.durations()
            out["task_duration_mean_s"] = sum(xs) / len(xs)
            out["task_duration_min_s"] = min(xs)
            out["task_duration_max_s"] = max(xs)
            for key, val in self.duration_percentiles().items():
                out[f"task_duration_{key}_s"] = val
        return out

    @classmethod
    def merge_all(
        cls,
        traces: Sequence["ExecutionTrace"],
        time_offsets: Optional[Sequence[float]] = None,
    ) -> "ExecutionTrace":
        """Concatenate many traces in one pass (vs. O(n²) chained :meth:`merge`).

        ``n_cores`` is the max over the inputs, re-based against the widest
        core id actually recorded — merging a 4-core simulated trace into a
        2-worker threaded one must not leave records pointing at cores the
        declared width doesn't cover.  ``time_offsets[i]`` shifts trace *i*
        onto a shared clock (e.g. batch start times); defaults to 0.
        """
        if time_offsets is not None and len(time_offsets) != len(traces):
            raise ValueError("time_offsets must match traces in length")
        declared = max((t.n_cores for t in traces), default=0)
        out = cls(
            n_cores=declared,
            scheduler=traces[0].scheduler if traces else "",
        )
        max_core = -1
        for i, t in enumerate(traces):
            off = time_offsets[i] if time_offsets is not None else 0.0
            for r in t.records:
                if r.core > max_core:
                    max_core = r.core
                out.records.append(
                    TaskRecord(
                        tid=r.tid,
                        name=r.name,
                        kind=r.kind,
                        core=r.core,
                        start=r.start + off,
                        end=r.end + off,
                        flops=r.flops,
                        wss_bytes=r.wss_bytes,
                        instructions=r.instructions,
                        l3_miss_bytes=r.l3_miss_bytes,
                        remote_miss_bytes=r.remote_miss_bytes,
                        overhead=r.overhead,
                    )
                )
        out.n_cores = max(declared, max_core + 1)
        return out

    def merge(self, other: "ExecutionTrace", time_offset: float = 0.0) -> "ExecutionTrace":
        """Concatenate two traces (e.g. successive batches) into one."""
        out = ExecutionTrace(n_cores=max(self.n_cores, other.n_cores), scheduler=self.scheduler)
        out.records = list(self.records)
        for r in other.records:
            out.records.append(
                TaskRecord(
                    tid=r.tid,
                    name=r.name,
                    kind=r.kind,
                    core=r.core,
                    start=r.start + time_offset,
                    end=r.end + time_offset,
                    flops=r.flops,
                    wss_bytes=r.wss_bytes,
                    instructions=r.instructions,
                    l3_miss_bytes=r.l3_miss_bytes,
                    remote_miss_bytes=r.remote_miss_bytes,
                    overhead=r.overhead,
                )
            )
        return out
