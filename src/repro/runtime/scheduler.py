"""Ready-queue schedulers.

The paper's B-Par configuration uses the OmpSs *breadth-first* scheduler: a
single global ready queue ordered FIFO, extended with a locality-aware
mechanism that prefers running a task on the same core as a predecessor
that touched the same data.  We implement that policy
(:class:`LocalityAwareScheduler`), the locality-oblivious plain FIFO it is
compared against in Fig. 7 (:class:`FIFOScheduler`), and a LIFO variant
used by the queue-order ablation bench.

Schedulers are *not* thread-safe on their own; executors serialise access
(the threaded executor under its lock, the simulated executor by being
single-threaded).

Three additional schedulers back the race-checking harness
(:mod:`repro.runtime.racecheck`): :class:`FuzzScheduler` pops a seeded
pseudo-random ready task (exploring the legal-schedule space),
:class:`RecordingScheduler` wraps any scheduler and logs its pop order,
and :class:`ReplayScheduler` re-executes a recorded pop order
deterministically.  A recorded schedule round-trips through JSON via
:class:`ScheduleRecord`.
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.runtime.task import Task


@dataclass
class SchedulerCounters:
    """Per-run counters every scheduler maintains (see ``docs/OBSERVABILITY.md``).

    Locality accounting is policy-independent: a push records the task's
    affinity hint (the core whose cache holds its data), and the pop that
    releases the task scores a *hit* when the popping core matches the
    hint and a *miss* otherwise.  A locality-oblivious policy (plain FIFO)
    therefore shows a low hit rate on the very same graph where the
    locality-aware policy scores high — the paper's Fig. 7 contrast as two
    counters.  Un-hinted tasks carry no locality preference and count
    toward neither side, so a single-core run (every hint is core 0) has
    hit rate 1.0 by construction.
    """

    pushes: int = 0
    pops: int = 0
    hinted_pushes: int = 0
    locality_hits: int = 0
    locality_misses: int = 0
    steals: int = 0
    steal_distance_total: int = 0
    #: pops that found the ready queue empty (a core wanted work and there
    #: was none — the starvation signal barrier-free scheduling minimises)
    starvation_stalls: int = 0
    depth_samples: int = 0
    depth_sum: int = 0
    depth_max: int = 0

    @property
    def locality_hit_rate(self) -> float:
        scored = self.locality_hits + self.locality_misses
        return self.locality_hits / scored if scored else 1.0

    @property
    def mean_steal_distance(self) -> float:
        return self.steal_distance_total / self.steals if self.steals else 0.0

    @property
    def mean_queue_depth(self) -> float:
        return self.depth_sum / self.depth_samples if self.depth_samples else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "hinted_pushes": self.hinted_pushes,
            "locality_hits": self.locality_hits,
            "locality_misses": self.locality_misses,
            "locality_hit_rate": self.locality_hit_rate,
            "steals": self.steals,
            "steal_distance_total": self.steal_distance_total,
            "mean_steal_distance": self.mean_steal_distance,
            "starvation_stalls": self.starvation_stalls,
            "queue_depth_mean": self.mean_queue_depth,
            "queue_depth_max": self.depth_max,
        }


class Scheduler:
    """Interface: ``push`` ready tasks, ``pop`` one for a given core.

    Every scheduler keeps a :class:`SchedulerCounters` (lazily created; a
    handful of integer bumps per push/pop) and optionally forwards steal
    events to a :class:`~repro.obs.hooks.ProfilingHooks` instance that an
    executor attached as ``self.hooks``.
    """

    #: human-readable policy name (used in traces and reports)
    name = "abstract"

    #: live profiling hooks (attached by executors; ``None`` = disabled)
    hooks = None

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        raise NotImplementedError

    def pop(self, core: int) -> Optional[Task]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- instrumentation (shared by all policies) ------------------------------

    @property
    def counters(self) -> SchedulerCounters:
        c = self.__dict__.get("_counters")
        if c is None:
            c = self.__dict__["_counters"] = SchedulerCounters()
        return c

    def _note_push(self, task: Task, hint: Optional[int]) -> None:
        c = self.counters
        c.pushes += 1
        if hint is not None:
            c.hinted_pushes += 1
            hints = self.__dict__.get("_hint_by_task")
            if hints is None:
                hints = self.__dict__["_hint_by_task"] = {}
            hints[id(task)] = hint
        depth = len(self)
        c.depth_samples += 1
        c.depth_sum += depth
        if depth > c.depth_max:
            c.depth_max = depth

    def _note_pop(self, task: Optional[Task], core: int) -> Optional[Task]:
        c = self.counters
        if task is None:
            c.starvation_stalls += 1
            return None
        c.pops += 1
        hints = self.__dict__.get("_hint_by_task")
        if hints:
            hint = hints.pop(id(task), None)
            if hint is not None:
                if hint == core:
                    c.locality_hits += 1
                else:
                    c.locality_misses += 1
        return task

    def _note_steal(self, task: Task, thief: int, victim: int) -> None:
        c = self.counters
        c.steals += 1
        c.steal_distance_total += abs(thief - victim)
        if self.hooks is not None:
            self.hooks.on_steal(task, thief, victim)


class FIFOScheduler(Scheduler):
    """Single global FIFO ready queue (breadth-first, locality-oblivious)."""

    name = "fifo"
    locality_aware = False

    def __init__(self, n_cores: int = 1) -> None:
        self._queue: Deque[Task] = deque()

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        self._queue.append(task)
        self._note_push(task, hint)

    def pop(self, core: int) -> Optional[Task]:
        return self._note_pop(self._queue.popleft() if self._queue else None, core)

    def __len__(self) -> int:
        return len(self._queue)


class LIFOScheduler(Scheduler):
    """Single global LIFO stack (depth-first); ablation only."""

    name = "lifo"
    locality_aware = False

    def __init__(self, n_cores: int = 1) -> None:
        self._queue: List[Task] = []

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        self._queue.append(task)
        self._note_push(task, hint)

    def pop(self, core: int) -> Optional[Task]:
        return self._note_pop(self._queue.pop() if self._queue else None, core)

    def __len__(self) -> int:
        return len(self._queue)


class LocalityAwareScheduler(Scheduler):
    """Global FIFO plus per-core affinity queues.

    When the executor completes a task on core *c* and a successor sharing
    one of its data regions becomes ready, it pushes that successor with
    ``hint=c``.  ``pop(c)`` serves core *c*'s affinity queue first, then
    the global queue, then steals the oldest entry from the most loaded
    affinity queue — the policy stays work-conserving, so makespan never
    regresses merely because hints exist.
    """

    name = "locality"
    locality_aware = True

    def __init__(self, n_cores: int) -> None:
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        self.n_cores = n_cores
        self._global: Deque[Task] = deque()
        self._affinity: List[Deque[Task]] = [deque() for _ in range(n_cores)]
        #: indices of nonempty affinity queues — steals scan only these,
        #: not all n_cores deques (pathological on wide machines)
        self._nonempty: set = set()
        self._size = 0

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        if hint is not None and 0 <= hint < self.n_cores:
            self._affinity[hint].append(task)
            self._nonempty.add(hint)
        else:
            self._global.append(task)
        self._size += 1
        self._note_push(task, hint)

    def pop(self, core: int) -> Optional[Task]:
        if self._size == 0:
            return self._note_pop(None, core)
        own = self._affinity[core] if core < self.n_cores else None
        if own:
            self._size -= 1
            task = own.popleft()
            if not own:
                self._nonempty.discard(core)
            return self._note_pop(task, core)
        if self._global:
            self._size -= 1
            return self._note_pop(self._global.popleft(), core)
        # Steal from the most loaded affinity queue.  Ascending scan with a
        # strict running max keeps the deterministic lowest-core-id
        # tie-break of the original full scan.
        victim_core = -1
        victim_len = 0
        for idx in sorted(self._nonempty):
            qlen = len(self._affinity[idx])
            if qlen > victim_len:
                victim_core, victim_len = idx, qlen
        if victim_core >= 0:
            victim = self._affinity[victim_core]
            self._size -= 1
            task = victim.popleft()
            if not victim:
                self._nonempty.discard(victim_core)
            self._note_steal(task, core, victim_core)
            return self._note_pop(task, core)
        return self._note_pop(None, core)

    def __len__(self) -> int:
        return self._size


class WorkStealingScheduler(Scheduler):
    """Cilk-style per-core deques with oldest-end stealing.

    Tasks are pushed to the *pushing context's* core deque (the executor
    passes the completing core as the hint; hint-less pushes round-robin).
    ``pop(c)`` serves core *c*'s own deque newest-first (depth-first, good
    for its own cache) and steals the *oldest* entry from the longest
    other deque when empty (breadth-first steals, good for load balance).
    Included as an ablation point against the paper's breadth-first queue.
    """

    name = "steal"
    locality_aware = True

    def __init__(self, n_cores: int) -> None:
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        self.n_cores = n_cores
        self._deques: List[Deque[Task]] = [deque() for _ in range(n_cores)]
        #: indices of nonempty deques (see LocalityAwareScheduler)
        self._nonempty: set = set()
        self._rr = 0
        self._size = 0

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        placed = hint if hint is not None and 0 <= hint < self.n_cores else None
        if placed is None:
            placed = self._rr
            self._rr = (self._rr + 1) % self.n_cores
        self._deques[placed].append(task)
        self._nonempty.add(placed)
        self._size += 1
        self._note_push(task, hint)

    def pop(self, core: int) -> Optional[Task]:
        if self._size == 0:
            return self._note_pop(None, core)
        if core < self.n_cores and self._deques[core]:
            own = self._deques[core]
            self._size -= 1
            task = own.pop()  # own work: newest first
            if not own:
                self._nonempty.discard(core)
            return self._note_pop(task, core)
        victim_core = -1
        victim_len = 0
        for idx in sorted(self._nonempty):
            qlen = len(self._deques[idx])
            if qlen > victim_len:
                victim_core, victim_len = idx, qlen
        if victim_core >= 0:
            victim = self._deques[victim_core]
            self._size -= 1
            task = victim.popleft()  # steal: oldest first
            if not victim:
                self._nonempty.discard(victim_core)
            self._note_steal(task, core, victim_core)
            return self._note_pop(task, core)
        return self._note_pop(None, core)

    def __len__(self) -> int:
        return self._size


class FuzzScheduler(Scheduler):
    """Pops a seeded pseudo-random ready task (schedule-space fuzzing).

    Any pop order it produces is a legal schedule (only ready tasks are
    ever queued), so a dataflow-deterministic graph must compute bitwise
    identical results under every seed — the property the fuzz regression
    suite asserts.  With a single-threaded executor the pop sequence is a
    pure function of the seed, making failures reproducible.
    """

    name = "fuzz"
    locality_aware = False

    def __init__(self, n_cores: int = 1, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._queue: List[Task] = []

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        self._queue.append(task)
        self._note_push(task, hint)

    def pop(self, core: int) -> Optional[Task]:
        if not self._queue:
            return self._note_pop(None, core)
        i = self._rng.randrange(len(self._queue))
        self._queue[i], self._queue[-1] = self._queue[-1], self._queue[i]
        return self._note_pop(self._queue.pop(), core)

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class ScheduleRecord:
    """A serialisable pop order of one graph execution.

    ``order`` holds tids in the sequence the scheduler released them;
    ``names`` the matching task names, kept so a replay against a drifted
    graph fails with a diagnosable mismatch instead of silently replaying
    a different program.
    """

    order: List[int]
    names: List[str]
    scheduler: str = "?"
    seed: Optional[int] = None
    format: str = "repro.schedule.v1"

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "format": self.format,
                "scheduler": self.scheduler,
                "seed": self.seed,
                "n_tasks": len(self.order),
                "order": self.order,
                "names": self.names,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScheduleRecord":
        data = json.loads(text)
        if data.get("format") != "repro.schedule.v1":
            raise ValueError(f"not a schedule record: format={data.get('format')!r}")
        return cls(
            order=list(data["order"]),
            names=list(data["names"]),
            scheduler=data.get("scheduler", "?"),
            seed=data.get("seed"),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ScheduleRecord":
        with open(path) as fh:
            return cls.from_json(fh.read())


class RecordingScheduler(Scheduler):
    """Wraps any scheduler and logs the order tasks were popped in.

    ``record()`` snapshots the log as a :class:`ScheduleRecord` that
    :class:`ReplayScheduler` re-executes deterministically.
    """

    locality_aware = False

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"record({inner.name})"
        self.popped: List[Task] = []

    @property
    def counters(self) -> SchedulerCounters:
        return self.inner.counters

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        self.inner.push(task, hint)

    def pop(self, core: int) -> Optional[Task]:
        task = self.inner.pop(core)
        if task is not None:
            self.popped.append(task)
        return task

    def __len__(self) -> int:
        return len(self.inner)

    def record(self) -> ScheduleRecord:
        return ScheduleRecord(
            order=[t.tid for t in self.popped],
            names=[t.name for t in self.popped],
            scheduler=self.inner.name,
            seed=getattr(self.inner, "seed", None),
        )


class ReplayScheduler(Scheduler):
    """Releases tasks only in a prescribed (recorded) tid order.

    ``pop`` returns the next prescribed task once it has been pushed
    (i.e. become ready) and ``None`` until then.  A recorded order is a
    topological order of the graph it was recorded from, so every
    prescribed task's predecessors appear earlier in the order and are
    already running or finished — executors that wait on completions make
    progress and never deadlock.  Replaying against a graph whose tids or
    names no longer match the record raises immediately.
    """

    name = "replay"
    locality_aware = False

    def __init__(self, record: ScheduleRecord, n_cores: int = 1) -> None:
        self.record_ = record
        self._order = record.order
        self._names = record.names
        self._next = 0
        self._ready: Dict[int, Task] = {}

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        if task.tid in self._ready:
            raise ValueError(f"task {task.tid} pushed twice")
        self._ready[task.tid] = task

    def pop(self, core: int) -> Optional[Task]:
        if self._next >= len(self._order):
            return None
        tid = self._order[self._next]
        task = self._ready.get(tid)
        if task is None:
            return None  # prescribed task not ready yet; caller waits
        if task.name != self._names[self._next]:
            raise ValueError(
                f"schedule replay mismatch at position {self._next}: recorded "
                f"{self._names[self._next]!r}, graph has {task.name!r} (tid {tid})"
            )
        del self._ready[tid]
        self._next += 1
        return task

    def __len__(self) -> int:
        return len(self._ready)


SCHEDULERS: Dict[str, type] = {
    "fifo": FIFOScheduler,
    "lifo": LIFOScheduler,
    "locality": LocalityAwareScheduler,
    "steal": WorkStealingScheduler,
    "fuzz": FuzzScheduler,
}


def make_scheduler(policy: str, n_cores: int) -> Scheduler:
    """Instantiate a scheduler by policy name (``fifo``/``lifo``/``locality``/
    ``steal``/``fuzz``).  ``"fuzz:SEED"`` selects the fuzz seed."""
    if policy.startswith("fuzz:"):
        return FuzzScheduler(n_cores, seed=int(policy.split(":", 1)[1]))
    try:
        cls = SCHEDULERS[policy]
    except KeyError:
        raise ValueError(f"unknown scheduler policy {policy!r}; options: {sorted(SCHEDULERS)}")
    return cls(n_cores)


def resolve_scheduler(spec, n_cores: int) -> Scheduler:
    """Turn a policy name, factory callable, or ready instance into a scheduler.

    The common front door for both executors: strings go through
    :func:`make_scheduler`, callables are invoked with ``n_cores``, and
    :class:`Scheduler` instances (e.g. a primed :class:`ReplayScheduler`)
    are used as-is.
    """
    if isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, str):
        return make_scheduler(spec, n_cores)
    if callable(spec):
        return spec(n_cores)
    raise TypeError(f"cannot resolve scheduler from {spec!r}")
