"""Ready-queue schedulers.

The paper's B-Par configuration uses the OmpSs *breadth-first* scheduler: a
single global ready queue ordered FIFO, extended with a locality-aware
mechanism that prefers running a task on the same core as a predecessor
that touched the same data.  We implement that policy
(:class:`LocalityAwareScheduler`), the locality-oblivious plain FIFO it is
compared against in Fig. 7 (:class:`FIFOScheduler`), and a LIFO variant
used by the queue-order ablation bench.

Schedulers are *not* thread-safe on their own; executors serialise access
(the threaded executor under its lock, the simulated executor by being
single-threaded).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.runtime.task import Task


class Scheduler:
    """Interface: ``push`` ready tasks, ``pop`` one for a given core."""

    #: human-readable policy name (used in traces and reports)
    name = "abstract"

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        raise NotImplementedError

    def pop(self, core: int) -> Optional[Task]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class FIFOScheduler(Scheduler):
    """Single global FIFO ready queue (breadth-first, locality-oblivious)."""

    name = "fifo"
    locality_aware = False

    def __init__(self, n_cores: int = 1) -> None:
        self._queue: Deque[Task] = deque()

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        self._queue.append(task)

    def pop(self, core: int) -> Optional[Task]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class LIFOScheduler(Scheduler):
    """Single global LIFO stack (depth-first); ablation only."""

    name = "lifo"
    locality_aware = False

    def __init__(self, n_cores: int = 1) -> None:
        self._queue: List[Task] = []

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        self._queue.append(task)

    def pop(self, core: int) -> Optional[Task]:
        return self._queue.pop() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class LocalityAwareScheduler(Scheduler):
    """Global FIFO plus per-core affinity queues.

    When the executor completes a task on core *c* and a successor sharing
    one of its data regions becomes ready, it pushes that successor with
    ``hint=c``.  ``pop(c)`` serves core *c*'s affinity queue first, then
    the global queue, then steals the oldest entry from the most loaded
    affinity queue — the policy stays work-conserving, so makespan never
    regresses merely because hints exist.
    """

    name = "locality"
    locality_aware = True

    def __init__(self, n_cores: int) -> None:
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        self.n_cores = n_cores
        self._global: Deque[Task] = deque()
        self._affinity: List[Deque[Task]] = [deque() for _ in range(n_cores)]
        #: indices of nonempty affinity queues — steals scan only these,
        #: not all n_cores deques (pathological on wide machines)
        self._nonempty: set = set()
        self._size = 0

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        if hint is not None and 0 <= hint < self.n_cores:
            self._affinity[hint].append(task)
            self._nonempty.add(hint)
        else:
            self._global.append(task)
        self._size += 1

    def pop(self, core: int) -> Optional[Task]:
        if self._size == 0:
            return None
        own = self._affinity[core] if core < self.n_cores else None
        if own:
            self._size -= 1
            task = own.popleft()
            if not own:
                self._nonempty.discard(core)
            return task
        if self._global:
            self._size -= 1
            return self._global.popleft()
        # Steal from the most loaded affinity queue.  Ascending scan with a
        # strict running max keeps the deterministic lowest-core-id
        # tie-break of the original full scan.
        victim_core = -1
        victim_len = 0
        for idx in sorted(self._nonempty):
            qlen = len(self._affinity[idx])
            if qlen > victim_len:
                victim_core, victim_len = idx, qlen
        if victim_core >= 0:
            victim = self._affinity[victim_core]
            self._size -= 1
            task = victim.popleft()
            if not victim:
                self._nonempty.discard(victim_core)
            return task
        return None

    def __len__(self) -> int:
        return self._size


class WorkStealingScheduler(Scheduler):
    """Cilk-style per-core deques with oldest-end stealing.

    Tasks are pushed to the *pushing context's* core deque (the executor
    passes the completing core as the hint; hint-less pushes round-robin).
    ``pop(c)`` serves core *c*'s own deque newest-first (depth-first, good
    for its own cache) and steals the *oldest* entry from the longest
    other deque when empty (breadth-first steals, good for load balance).
    Included as an ablation point against the paper's breadth-first queue.
    """

    name = "steal"
    locality_aware = True

    def __init__(self, n_cores: int) -> None:
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        self.n_cores = n_cores
        self._deques: List[Deque[Task]] = [deque() for _ in range(n_cores)]
        #: indices of nonempty deques (see LocalityAwareScheduler)
        self._nonempty: set = set()
        self._rr = 0
        self._size = 0

    def push(self, task: Task, hint: Optional[int] = None) -> None:
        if hint is None or not (0 <= hint < self.n_cores):
            hint = self._rr
            self._rr = (self._rr + 1) % self.n_cores
        self._deques[hint].append(task)
        self._nonempty.add(hint)
        self._size += 1

    def pop(self, core: int) -> Optional[Task]:
        if self._size == 0:
            return None
        if core < self.n_cores and self._deques[core]:
            own = self._deques[core]
            self._size -= 1
            task = own.pop()  # own work: newest first
            if not own:
                self._nonempty.discard(core)
            return task
        victim_core = -1
        victim_len = 0
        for idx in sorted(self._nonempty):
            qlen = len(self._deques[idx])
            if qlen > victim_len:
                victim_core, victim_len = idx, qlen
        if victim_core >= 0:
            victim = self._deques[victim_core]
            self._size -= 1
            task = victim.popleft()  # steal: oldest first
            if not victim:
                self._nonempty.discard(victim_core)
            return task
        return None

    def __len__(self) -> int:
        return self._size


SCHEDULERS: Dict[str, type] = {
    "fifo": FIFOScheduler,
    "lifo": LIFOScheduler,
    "locality": LocalityAwareScheduler,
    "steal": WorkStealingScheduler,
}


def make_scheduler(policy: str, n_cores: int) -> Scheduler:
    """Instantiate a scheduler by policy name (``fifo``/``lifo``/``locality``)."""
    try:
        cls = SCHEDULERS[policy]
    except KeyError:
        raise ValueError(f"unknown scheduler policy {policy!r}; options: {sorted(SCHEDULERS)}")
    return cls(n_cores)
