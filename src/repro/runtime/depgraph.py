"""Dynamic dependency-graph construction with OmpSs semantics.

Tasks are registered in the (sequentially valid) order a serial execution
would run them — exactly how Algorithms 2 and 3 of the paper create tasks.
For every region the tracker keeps the last writer and the readers seen
since that write, and derives:

* RAW — a reader depends on the last writer of each ``in`` region;
* WAW — a writer depends on the previous writer of each ``out`` region;
* WAR — a writer depends on every reader since the last write.

Because edges always point from an earlier-registered task to a later one,
the graph is acyclic by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.runtime.task import Region, Task


def transitive_reduction(
    successors: Sequence[Sequence[int]],
) -> Tuple[List[List[int]], List[Tuple[int, int]]]:
    """Split a DAG's edges into order-defining and redundant sets.

    An edge ``a → b`` is *redundant* when some other successor ``s`` of
    ``a`` already reaches ``b`` (a path ``a → s → … → b`` exists), so the
    edge adds no ordering the rest of the graph does not imply.  Returns
    ``(reduced, redundant)`` where ``reduced`` is the successor list of
    the transitive reduction — the unique minimal graph with the same
    reachability — and ``redundant`` lists the dropped edges.

    The dependence tracker derives one edge per (region, hazard) pair, so
    redundant edges are *normal* in declared graphs; what the static
    analyzer cares about is their count (dependence-management overhead,
    cf. Bosch et al.) and that removing them leaves span and width
    unchanged.  Requires tasks stored in a topological tid order (true by
    construction for :class:`TaskGraph`).
    """
    desc = descendants_bitsets(successors)
    reduced: List[List[int]] = []
    redundant: List[Tuple[int, int]] = []
    for a, succs in enumerate(successors):
        keep: List[int] = []
        for b in succs:
            if any(s != b and (desc[s] >> b) & 1 for s in succs):
                redundant.append((a, b))
            else:
                keep.append(b)
        reduced.append(keep)
    return reduced, redundant


def longest_path(
    successors: Sequence[Sequence[int]],
    weights: Sequence[float],
) -> float:
    """Longest weighted path through a DAG given in topological tid order.

    Standalone sibling of :meth:`TaskGraph.critical_path_length` for
    callers that analyse *derived* edge sets (a transitive reduction, a
    dataflow-only subgraph) without materialising a new ``TaskGraph``.
    """
    n = len(successors)
    dist = [0.0] * n
    best = 0.0
    for tid in range(n):
        d = dist[tid] + weights[tid]
        for succ in successors[tid]:
            if d > dist[succ]:
                dist[succ] = d
        if d > best:
            best = d
    return best


def wavefront_width(successors: Sequence[Sequence[int]]) -> int:
    """Maximum ASAP-level population of a DAG (see ``max_wavefront``)."""
    n = len(successors)
    level = [0] * n
    for tid in range(n):
        for succ in successors[tid]:
            if level[tid] + 1 > level[succ]:
                level[succ] = level[tid] + 1
    counts: Dict[int, int] = {}
    for lv in level:
        counts[lv] = counts.get(lv, 0) + 1
    return max(counts.values()) if counts else 0


def descendants_bitsets(successors: Sequence[Sequence[int]]) -> List[int]:
    """Transitive-closure bitsets of a DAG given in topological tid order.

    ``result[t]`` is an int whose bit ``s`` is set iff there is a path
    ``t → … → s``.  Requires the task list to be stored in a topological
    order (true by construction for :class:`TaskGraph`), so one reverse
    sweep suffices.  Python ints make this O(V·E/word) — cheap even for
    graphs of tens of thousands of tasks.
    """
    n = len(successors)
    desc = [0] * n
    for tid in range(n - 1, -1, -1):
        bits = 0
        for succ in successors[tid]:
            bits |= desc[succ] | (1 << succ)
        desc[tid] = bits
    return desc


class TaskGraph:
    """A DAG of tasks built incrementally from dependence annotations."""

    def __init__(self) -> None:
        self.tasks: List[Task] = []
        self.successors: List[List[int]] = []
        self.indegree: List[int] = []
        # Dependency-tracking state, keyed by region object identity.
        self._last_writer: Dict[int, int] = {}
        self._readers: Dict[int, List[int]] = {}
        # Most recent barrier task (every later task depends on it).
        self._barrier_tid: Optional[int] = None
        # Storage resolver bound by the graph builder (duck-typed: the
        # multiprocess executor expects map_storage / export_region /
        # import_region / side-state hooks).  None for hand-built graphs,
        # which then execute without cross-process region transport.
        self.storage = None

    # -- construction --------------------------------------------------------

    def add(self, task: Task) -> Task:
        """Register ``task``, deriving its dependence edges.

        Returns the task with its ``tid`` assigned.
        """
        tid = len(self.tasks)
        task.tid = tid
        self.tasks.append(task)
        self.successors.append([])
        self.indegree.append(0)

        preds: Set[int] = set()
        for region in task.reads():
            writer = self._last_writer.get(id(region))
            if writer is not None:
                preds.add(writer)
        for region in task.writes():
            rid = id(region)
            writer = self._last_writer.get(rid)
            if writer is not None:
                preds.add(writer)
            for reader in self._readers.get(rid, ()):
                preds.add(reader)

        if self._barrier_tid is not None:
            preds.add(self._barrier_tid)
        preds.discard(tid)
        for pred in preds:
            self.successors[pred].append(tid)
            self.indegree[tid] += 1

        # Update tracking state *after* resolving dependences.
        for region in task.reads():
            self._readers.setdefault(id(region), []).append(tid)
        for region in task.writes():
            rid = id(region)
            self._last_writer[rid] = tid
            self._readers[rid] = []
        return task

    def add_task(
        self,
        name: str,
        fn=None,
        ins: Iterable[Region] = (),
        outs: Iterable[Region] = (),
        inouts: Iterable[Region] = (),
        flops: float = 0.0,
        kind: str = "task",
        meta=None,
    ) -> Task:
        """Convenience wrapper: build a :class:`Task` and :meth:`add` it."""
        return self.add(
            Task(name, fn, ins=ins, outs=outs, inouts=inouts, flops=flops, kind=kind, meta=meta)
        )

    def barrier(self, name: str = "barrier") -> Task:
        """Insert a full synchronisation point (OmpSs ``taskwait``).

        The barrier depends on every current *sink* task (a task no other
        task depends on yet); since every unfinished task has a path to
        some sink, sink completion implies global completion.  Every task
        registered afterwards depends on the barrier.  This models the
        per-layer barriers of the conventional frameworks; B-Par never
        calls it during normal operation — it exists for the barrier
        ablation and the framework baselines.
        """
        sinks = [t.tid for t in self.tasks if not self.successors[t.tid]]
        barrier = Task(name, None, kind="barrier")
        tid = len(self.tasks)
        barrier.tid = tid
        self.tasks.append(barrier)
        self.successors.append([])
        self.indegree.append(0)
        for sink in sinks:
            self.successors[sink].append(tid)
            self.indegree[tid] += 1
        self._barrier_tid = tid
        return barrier

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def roots(self) -> List[Task]:
        """Tasks with no unresolved dependences (ready at graph start)."""
        return [t for t in self.tasks if self.indegree[t.tid] == 0]

    def predecessors(self, tid: int) -> List[int]:
        """Predecessor tids of ``tid`` (derived; O(edges))."""
        return [p for p in range(len(self.tasks)) if tid in self.successors[p]]

    def num_edges(self) -> int:
        return sum(len(s) for s in self.successors)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All dependence edges as ``(pred_tid, succ_tid)`` pairs."""
        for pred, succs in enumerate(self.successors):
            for succ in succs:
                yield pred, succ

    def transitive_reduction(self) -> Tuple[List[List[int]], List[Tuple[int, int]]]:
        """``(reduced successor lists, redundant edges)`` of this graph."""
        return transitive_reduction(self.successors)

    def redundant_edges(self) -> List[Tuple[int, int]]:
        """Declared edges that are not order-defining (see module helper)."""
        return self.transitive_reduction()[1]

    # -- reachability ---------------------------------------------------------

    def descendants_bitsets(self) -> List[int]:
        """Per-task transitive-closure bitsets (see module-level helper).

        Compute once and pass to :meth:`has_path`/:meth:`unordered` when
        querying many pairs — the closure is O(V·E/word), each query O(1).
        """
        return descendants_bitsets(self.successors)

    def has_path(self, src: int, dst: int, bits: Optional[List[int]] = None) -> bool:
        """True when a dependence path ``src → … → dst`` exists."""
        if bits is None:
            bits = self.descendants_bitsets()
        return bool((bits[src] >> dst) & 1)

    def unordered(self, a: int, b: int, bits: Optional[List[int]] = None) -> bool:
        """True when no dependence path orders ``a`` and ``b`` either way.

        The question the race checker asks: two such tasks may execute
        concurrently under *some* legal schedule, so any data conflict
        between them is a race.
        """
        if bits is None:
            bits = self.descendants_bitsets()
        return not ((bits[a] >> b) & 1 or (bits[b] >> a) & 1)

    def is_topological_order(self, order: Iterable[int]) -> bool:
        """Check that ``order`` (tids) respects every edge."""
        pos = {tid: i for i, tid in enumerate(order)}
        if len(pos) != len(self.tasks):
            return False
        for pred, succs in enumerate(self.successors):
            for succ in succs:
                if pos[pred] >= pos[succ]:
                    return False
        return True

    def validate_acyclic(self) -> bool:
        """True when a full topological sort exists (always, by construction)."""
        indeg = list(self.indegree)
        stack = [t.tid for t in self.tasks if indeg[t.tid] == 0]
        visited = 0
        while stack:
            tid = stack.pop()
            visited += 1
            for succ in self.successors[tid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    stack.append(succ)
        return visited == len(self.tasks)

    def critical_path_length(self, weight=lambda t: 1.0) -> float:
        """Longest path through the DAG under ``weight`` (default: task count).

        With ``weight=duration`` this is the model-parallel lower bound on
        makespan, used by the parallel-efficiency analysis.
        """
        dist = [0.0] * len(self.tasks)
        for task in self.tasks:  # tasks are stored in topological order
            d = dist[task.tid] + weight(task)
            for succ in self.successors[task.tid]:
                if d > dist[succ]:
                    dist[succ] = d
        best = 0.0
        for task in self.tasks:
            d = dist[task.tid] + weight(task)
            if d > best:
                best = d
        return best

    def serial_work(self, weight=lambda t: 1.0) -> float:
        """Total work under ``weight`` — the serial-execution lower bound."""
        return sum(weight(t) for t in self.tasks)

    def max_wavefront(self) -> int:
        """Maximum number of simultaneously-runnable tasks (ASAP levels).

        An upper bound on useful core count for this graph — the quantity
        the paper invokes when explaining why mbs:1 stops scaling while
        mbs:8 fills 48 cores.
        """
        level = [0] * len(self.tasks)
        for task in self.tasks:
            for succ in self.successors[task.tid]:
                if level[task.tid] + 1 > level[succ]:
                    level[succ] = level[task.tid] + 1
        counts: Dict[int, int] = {}
        for lv in level:
            counts[lv] = counts.get(lv, 0) + 1
        return max(counts.values()) if counts else 0
