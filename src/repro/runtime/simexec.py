"""Deterministic discrete-event executor over a simulated machine.

Runs a :class:`~repro.runtime.depgraph.TaskGraph` against a
:class:`~repro.simarch.machine.MachineSpec`: each dispatched task is
charged a duration by the :class:`~repro.simarch.costmodel.CostModel`
(consulting the cache model's current residency), and completions wake up
successors exactly as on the threaded executor.  Everything is ordered by
``(time, sequence-number)``, so the simulation is bit-reproducible.

With ``execute_payloads=True`` the numerics actually run in dependence
order ("functional simulation"), letting tests assert that simulated
schedules compute the same results as the serial oracle.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

from repro.obs.hooks import ProfilingHooks
from repro.obs.publish import publish_run
from repro.obs.registry import MetricsRegistry
from repro.runtime.depgraph import TaskGraph
from repro.runtime.executor import locality_hint
from repro.runtime.scheduler import ReplayScheduler, Scheduler, resolve_scheduler
from repro.runtime.trace import ExecutionTrace, TaskRecord
from repro.simarch.cache import CacheModel
from repro.simarch.costmodel import CostModel
from repro.simarch.machine import MachineSpec, usable_cores


class SimulatedExecutor:
    """Discrete-event simulation of task-graph execution.

    Parameters
    ----------
    machine:
        The modelled platform.
    n_cores:
        Use only the first ``n_cores`` cores (paper methodology: runs with
        ≤ 24 cores stay on one socket).  Defaults to all cores.
    scheduler:
        Ready-queue policy name — ``"locality"`` (B-Par default),
        ``"fifo"`` (locality-oblivious), ``"lifo"``, or ``"fuzz:SEED"``
        (schedule fuzzing) — or a factory callable ``n_cores -> Scheduler``
        (e.g. to inject a ``RecordingScheduler``/``ReplayScheduler`` from
        the race-checking harness; a factory is invoked once per ``run``).
    execute_payloads:
        Run task payload functions in dependence order while simulating.
    persistent_cache:
        Keep cache residency across successive :meth:`run` calls (models
        back-to-back batches of a training loop).
    """

    def __init__(
        self,
        machine: MachineSpec,
        n_cores: Optional[int] = None,
        scheduler: str = "locality",
        cost_model: Optional[CostModel] = None,
        execute_payloads: bool = False,
        persistent_cache: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        hooks: Optional[ProfilingHooks] = None,
    ) -> None:
        self.machine = machine
        self.n_cores = n_cores if n_cores is not None else machine.n_cores
        usable_cores(machine, self.n_cores)  # validate
        self.scheduler_policy = scheduler
        self.cost_model = cost_model or CostModel(machine)
        self.execute_payloads = execute_payloads
        self.persistent_cache = persistent_cache
        self.metrics = metrics
        self.hooks = hooks
        cps = machine.cores_per_socket
        self._active_sockets = (self.n_cores + cps - 1) // cps
        self._cache = CacheModel(machine, self._active_sockets)

    # visible alias so engines can report worker counts uniformly
    @property
    def n_workers(self) -> int:
        return self.n_cores

    def reset_cache(self) -> None:
        """Drop all modelled cache residency (cold-start the machine)."""
        self._cache = CacheModel(self.machine, self._active_sockets)

    def run(self, graph: TaskGraph, plan=None) -> ExecutionTrace:
        """Simulate ``graph``; with ``plan`` (a compiled
        :class:`~repro.compile.plan.CompiledPlan`) replay its static
        release order over the transitive-reduced edge set instead of a
        dynamic ready-queue policy."""
        if not self.persistent_cache:
            self.reset_cache()
        cache = self._cache
        if plan is not None:
            plan.validate(graph)
            scheduler = ReplayScheduler(plan.to_schedule_record(), self.n_cores)
            successors = plan.successors
            indegree = plan.indegree()
        else:
            scheduler = resolve_scheduler(self.scheduler_policy, self.n_cores)
            successors = graph.successors
            indegree = list(graph.indegree)
        replay = plan is not None
        scheduler.hooks = self.hooks
        hooks = self.hooks
        trace = ExecutionTrace(
            n_cores=self.n_cores, scheduler=getattr(scheduler, "name", "?")
        )

        remaining = len(graph.tasks)
        if remaining == 0:
            trace.scheduler_counters = scheduler.counters
            publish_run(self.metrics, trace, scheduler.counters, trace.scheduler)
            return trace

        idle: Set[int] = set(range(self.n_cores))
        active_on_socket = [0] * self.machine.n_sockets
        # completion events: (time, seq, tid, core)
        events: List[Tuple[float, int, int, int]] = []
        seq = 0
        now = 0.0

        if replay:
            # Roots are identical under transitive reduction (a redundant
            # edge into t implies another retained path into t).
            for tid, deg in enumerate(indegree):
                if deg == 0:
                    scheduler.push(graph.tasks[tid])
        else:
            for task in graph.roots():
                scheduler.push(task)

        affinity = getattr(scheduler, "_affinity", None)
        # Core enumeration interleaved across sockets: un-hinted work spreads
        # over both sockets (balancing bandwidth), exactly as an idle-core
        # wake-up order would on the real machine.  The rotating start makes
        # an oblivious scheduler scatter consecutive chain tasks across
        # cores, while affinity hints pin chains regardless of rotation.
        core_seq = sorted(
            range(self.n_cores), key=lambda c: (c % self.machine.cores_per_socket, c)
        )
        seq_pos = {c: i for i, c in enumerate(core_seq)}
        rr = 0

        def dispatch() -> None:
            nonlocal seq, rr
            n = self.n_cores
            while scheduler and idle:
                # Serve cores that have hinted (affinity) work first so a
                # neighbour does not steal a task away from its data.
                if affinity is not None:
                    with_local = sorted(c for c in idle if affinity[c])
                    local_set = set(with_local)
                    rest = [
                        c
                        for c in (core_seq[(rr + i) % n] for i in range(n))
                        if c in idle and c not in local_set
                    ]
                    order = with_local + rest
                else:
                    order = [
                        c
                        for c in (core_seq[(rr + i) % n] for i in range(n))
                        if c in idle
                    ]
                dispatched = False
                for core in order:
                    task = scheduler.pop(core)
                    if task is None:
                        break
                    idle.discard(core)
                    socket = self.machine.socket_of(core)
                    active_on_socket[socket] += 1
                    cost = self.cost_model.cost(
                        task, core, cache, active_on_socket[socket]
                    )
                    if hooks is not None:
                        hooks.on_task_start(task, core, now)
                    if self.execute_payloads:
                        task.run()
                    trace.records.append(
                        TaskRecord(
                            tid=task.tid,
                            name=task.name,
                            kind=task.kind,
                            core=core,
                            start=now,
                            end=now + cost.duration,
                            flops=task.flops,
                            wss_bytes=task.working_set_bytes(),
                            instructions=cost.instructions,
                            l3_miss_bytes=cost.access.miss_bytes,
                            remote_miss_bytes=cost.access.remote_mem_bytes,
                            overhead=cost.overhead,
                        )
                    )
                    heapq.heappush(events, (now + cost.duration, seq, task.tid, core))
                    seq += 1
                    rr = (seq_pos[core] + 1) % n
                    dispatched = True
                if not dispatched:
                    break

        dispatch()
        while events:
            now, _, tid, core = heapq.heappop(events)
            # Drain every completion at this timestamp before dispatching so
            # scheduling decisions see the full ready set (deterministic).
            completed = [(tid, core)]
            while events and events[0][0] == now:
                _, _, tid2, core2 = heapq.heappop(events)
                completed.append((tid2, core2))
            for tid2, core2 in completed:
                task = graph.tasks[tid2]
                if hooks is not None:
                    hooks.on_task_end(task, core2, now)
                idle.add(core2)
                active_on_socket[self.machine.socket_of(core2)] -= 1
                remaining -= 1
                for succ_tid in successors[tid2]:
                    indegree[succ_tid] -= 1
                    if indegree[succ_tid] == 0:
                        succ = graph.tasks[succ_tid]
                        hint = None if replay else locality_hint(task, succ, core2)
                        scheduler.push(succ, hint=hint)
            dispatch()

        if remaining != 0:  # pragma: no cover - defensive
            raise RuntimeError(f"simulation finished with {remaining} unexecuted tasks")
        trace.machine = self.machine  # type: ignore[attr-defined]
        trace.cache_stats = cache.stats  # type: ignore[attr-defined]
        trace.scheduler_counters = scheduler.counters
        publish_run(self.metrics, trace, scheduler.counters, trace.scheduler)
        return trace
