"""The multiprocess execution substrate: real parallelism past the GIL.

:class:`MultiprocessExecutor` runs task payloads in **worker processes**
(one per core, pinned socket-compactly), so fine-grained task modes that
hold the GIL — ``fusion="off"`` per-gate kernels, small wavefront tiles,
pointwise-heavy GRU graphs — overlap for real instead of serialising on
one interpreter lock.  The design follows the distributed-manager runtime
of Bosch et al. (arXiv:2009.03066): a single *manager* (this process)
drives the existing scheduler/indegree machinery, and only **task ids and
region slot descriptors — never arrays — travel over the pipes**.

Data movement instead goes through POSIX shared memory
(:mod:`repro.runtime.shm`), in two disciplines derived from how the graph
builder stores regions:

* **Preallocated storage** (params, gradients, velocity, inputs, the
  ``dh``/``dc``/``dm`` accumulator grids) is rebound into a single shm
  *state arena* via ``storage.map_storage`` **before the workers fork**.
  Payloads mutate these buffers in place, the dependence graph orders the
  mutations, and every process sees the same pages — zero per-task copies.
  After the run the manager copies the arena back and restores the
  original bindings, so engine-held arrays never dangle into a segment
  about to be unlinked.
* **Lazily-materialised slots** (``h``/``cache``/``zx``/…, assigned by
  payloads) land in the writing worker's private memory.  The worker
  pickles each slot that has downstream readers into its *export arena*
  and reports a :class:`~repro.runtime.shm.ShmBlock` descriptor; the
  manager versions descriptors and attaches the needed ones to each
  dispatch, so a reader imports a slot at most once per version.

Workers fork from the manager (closures, graph, and shm mappings are
inherited — nothing about the graph itself is ever pickled), which makes
the substrate Linux/macOS-fork specific by design.  Results are bitwise
identical to the threaded executor: payload arithmetic, accumulation
order, and dataflow are unchanged — only *where* each task runs differs.

Crash containment: every arena is created by the manager, and the
manager's ``finally`` destroys them all — success, payload exception, or
worker crash alike, so ``/dev/shm`` can never leak a segment.  A worker
dying mid-task (SIGKILL, OOM) trips its process sentinel inside the same
``connection.wait`` that collects results, and the run fails fast with
:class:`~repro.runtime.protocol.WorkerCrashError` naming the in-flight
task.  There are no cross-process locks anywhere — a killed worker cannot
leave one held, so no failure mode hangs the manager.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from collections import deque
from multiprocessing import connection
from typing import Dict, List, Optional, Tuple

from repro.obs.hooks import ProfilingHooks
from repro.obs.publish import publish_mp_workers, publish_run
from repro.obs.registry import MetricsRegistry
from repro.runtime.depgraph import TaskGraph
from repro.runtime.executor import SchedulerFactory, locality_hint
from repro.runtime.protocol import WorkerCrashError
from repro.runtime.scheduler import (
    LocalityAwareScheduler,
    ReplayScheduler,
    resolve_scheduler,
)
from repro.runtime.shm import ALIGNMENT, ShmArena
from repro.runtime.trace import ExecutionTrace, TaskRecord

#: floor on an export arena's size — tiny graphs still get working room
MIN_ARENA_BYTES = 1 << 20

#: per-exported-slot allowance on top of the raw payload bytes (pickle
#: framing, array headers, alignment padding)
EXPORT_SLACK_BYTES = 1024


def plan_placement(n_workers: int, topology=None) -> List[int]:
    """Socket-compact core ids for ``n_workers`` workers.

    Mirrors :class:`repro.simarch.machine.MachineSpec` numbering — cores
    are socket-major, so filling core ids in ascending order fills socket
    0 completely before touching socket 1, exactly the placement the
    paper's ≤24-core runs use and the cost model's remote-access pricing
    assumes.  ``topology`` is anything with ``n_sockets``/
    ``cores_per_socket`` (e.g. a ``MachineSpec``), an ``(n_sockets,
    cores_per_socket)`` tuple, or ``None`` for the host (one socket,
    ``os.cpu_count()`` cores).  Workers beyond the core count wrap.
    """
    if topology is None:
        n_sockets, cores_per_socket = 1, os.cpu_count() or 1
    elif hasattr(topology, "n_sockets"):
        n_sockets, cores_per_socket = topology.n_sockets, topology.cores_per_socket
    else:
        n_sockets, cores_per_socket = topology
    total = max(1, n_sockets * cores_per_socket)
    return [w % total for w in range(n_workers)]


def _pin_to_core(core_id: int) -> None:
    """Best-effort affinity pin; silently a no-op where unsupported."""
    try:
        host = os.cpu_count() or 1
        os.sched_setaffinity(0, {core_id % host})
    except (AttributeError, OSError, ValueError):  # pragma: no cover
        pass


def _worker_main(
    worker_id: int,
    core_id: int,
    graph: TaskGraph,
    functional: bool,
    exports_by_task: Dict[int, Tuple],
    arenas: Dict[str, ShmArena],
    arena_name: Optional[str],
    cmd_r,
    res_w,
) -> None:
    """Worker loop: receive ``(task, tid, imports)``, run, report exports.

    Everything heavy (graph, payload closures, shm mappings) arrived via
    fork; the pipes carry only ids and descriptors.  Any exception —
    payload failure, unpicklable export, arena exhaustion — is reported as
    an ``("error", …)`` message and the worker exits; it never blocks on a
    lock, so the manager can always make progress.
    """
    _pin_to_core(core_id)
    storage = graph.storage
    my_arena = arenas[arena_name] if arena_name is not None else None
    stats = {
        "tasks": 0, "imports": 0, "exports": 0,
        "import_bytes": 0, "export_bytes": 0, "exec_seconds": 0.0,
    }
    current_tid: Optional[int] = None
    try:
        while True:
            msg = cmd_r.recv()
            if msg[0] == "exit":
                res_w.send(("bye", worker_id, stats))
                return
            _, tid, imports = msg
            current_tid = tid
            task = graph.tasks[tid]
            for key, block in imports:
                payload = arenas[block.segment].get_pickle(block)
                storage.import_region(key, payload)
                stats["imports"] += 1
                stats["import_bytes"] += block.nbytes
            t0 = time.perf_counter()
            task.run()
            t1 = time.perf_counter()
            stats["tasks"] += 1
            stats["exec_seconds"] += t1 - t0
            exports = []
            for key in exports_by_task.get(tid, ()):
                block = my_arena.put_pickle(storage.export_region(key))
                exports.append((key, block))
                stats["exports"] += 1
                stats["export_bytes"] += block.nbytes
            side = storage.export_side_state(task) if functional else []
            res_w.send(("done", tid, exports, side, t0, t1))
            current_tid = None
    except EOFError:  # manager went away; nothing left to report to
        return
    except BaseException as exc:
        tb = traceback.format_exc()
        try:
            payload = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as ser_exc:  # arbitrary __reduce__ can raise anything
            payload = None
            tb += f"\n(exception not picklable: {ser_exc!r})"
        try:
            res_w.send(("error", worker_id, current_tid, payload, tb))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass


class _Worker:
    """Manager-side handle: process, pipe ends, per-version import cache."""

    __slots__ = ("proc", "cmd_w", "res_r", "core", "seen", "stats")

    def __init__(self, proc, cmd_w, res_r, core: int) -> None:
        self.proc = proc
        self.cmd_w = cmd_w
        self.res_r = res_r
        self.core = core
        self.seen: Dict = {}  # region key -> last imported version
        self.stats: Optional[dict] = None


class MultiprocessExecutor:
    """Process-pool executor with shared-memory region storage.

    Drop-in :class:`~repro.runtime.protocol.Executor`: construct via
    ``ExecutionConfig(executor="process", n_workers=…)`` and every engine
    accepts it unchanged, including compiled-plan replay (``run(graph,
    plan=…)``) for the serving warm path.

    Parameters mirror :class:`~repro.runtime.executor.ThreadedExecutor`;
    ``topology`` additionally controls socket-aware placement (see
    :func:`plan_placement`).
    """

    def __init__(
        self,
        n_workers: int,
        scheduler_factory: SchedulerFactory = LocalityAwareScheduler,
        metrics: Optional[MetricsRegistry] = None,
        hooks: Optional[ProfilingHooks] = None,
        topology=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "MultiprocessExecutor requires the 'fork' start method "
                "(workers inherit the graph and shared-memory mappings)"
            )
        self.n_workers = n_workers
        self._scheduler_factory = scheduler_factory
        self.metrics = metrics
        self.hooks = hooks
        self.topology = topology

    # -- setup helpers -------------------------------------------------------

    def _transport_tables(self, graph: TaskGraph, storage, functional: bool):
        """Per-task import/export key lists plus the export-arena size.

        A write region is exported only when its kind is lazily
        materialised AND someone other than its writer reads it (or the
        manager needs it for result readback) — accumulator regions and
        dead stores ship nothing.
        """
        if not functional:
            return {}, {}, MIN_ARENA_BYTES
        shipped = storage.shipped_kinds()
        parent_kinds = storage.parent_kinds()
        readers: Dict = {}
        imports_by_task: Dict[int, Tuple] = {}
        for task in graph.tasks:
            keys = tuple(r.key for r in task.reads() if r.key[0] in shipped)
            if keys:
                imports_by_task[task.tid] = keys
                for key in keys:
                    readers.setdefault(key, set()).add(task.tid)
        exports_by_task: Dict[int, Tuple] = {}
        export_bytes = 0
        for task in graph.tasks:
            keys = []
            for region in task.writes():
                key = region.key
                if key[0] not in shipped:
                    continue
                if key[0] not in parent_kinds and not any(
                    t != task.tid for t in readers.get(key, ())
                ):
                    continue
                keys.append(key)
                hint = storage.export_region_nbytes(key, region.nbytes)
                export_bytes += _round_up(hint) + EXPORT_SLACK_BYTES
            if keys:
                exports_by_task[task.tid] = tuple(keys)
        capacity = max(MIN_ARENA_BYTES, export_bytes + export_bytes // 8)
        return imports_by_task, exports_by_task, capacity

    # -- execution -----------------------------------------------------------

    def run(self, graph: TaskGraph, plan=None) -> ExecutionTrace:
        """Execute ``graph``; semantics match ``ThreadedExecutor.run``
        (dynamic dependence resolution, or static replay with ``plan``)."""
        if plan is not None:
            plan.validate(graph)
            scheduler = ReplayScheduler(plan.to_schedule_record(), self.n_workers)
            successors = plan.successors
            indegree = plan.indegree()
        else:
            scheduler = resolve_scheduler(self._scheduler_factory, self.n_workers)
            successors = graph.successors
            indegree = list(graph.indegree)
        scheduler.hooks = self.hooks
        hooks = self.hooks
        replay = plan is not None
        trace = ExecutionTrace(
            n_cores=self.n_workers, scheduler=getattr(scheduler, "name", "?")
        )
        n_tasks = len(graph.tasks)
        if n_tasks == 0:
            trace.scheduler_counters = scheduler.counters
            publish_run(self.metrics, trace, scheduler.counters, trace.scheduler)
            return trace

        storage = graph.storage
        functional = bool(
            storage is not None and getattr(storage, "functional", False)
        )
        imports_by_task, exports_by_task, arena_capacity = self._transport_tables(
            graph, storage, functional
        )

        state_arena: Optional[ShmArena] = None
        export_arenas: Dict[str, ShmArena] = {}
        restore: List[Tuple] = []  # (original array, shm view)
        workers: List[_Worker] = []
        errors: List[BaseException] = []
        worker_stats: Dict[int, dict] = {}
        remaining = n_tasks

        try:
            # 1. Rebind preallocated storage into the shared state arena
            #    (before fork, so every worker inherits the same pages).
            if functional:
                sizes: List[int] = []
                storage.map_storage(lambda a: (sizes.append(a.nbytes), a)[1])
                state_arena = ShmArena(
                    sum(_round_up(s) for s in sizes) + ALIGNMENT
                )

                def _share(a):
                    desc = state_arena.put_array(a)
                    view = state_arena.view_array(desc)
                    restore.append((a, view))
                    return view

                storage.map_storage(_share)

            # 2. One export arena per worker: bump-allocated by its owner
            #    only, so no cross-process synchronisation exists to leak
            #    or deadlock when a worker dies.
            arena_names: List[Optional[str]] = []
            if functional:
                for _ in range(self.n_workers):
                    arena = ShmArena(arena_capacity)
                    export_arenas[arena.name] = arena
                    arena_names.append(arena.name)
            else:
                arena_names = [None] * self.n_workers

            # 3. Fork pinned workers.
            ctx = multiprocessing.get_context("fork")
            cores = plan_placement(self.n_workers, self.topology)
            for i in range(self.n_workers):
                cmd_r, cmd_w = ctx.Pipe(duplex=False)
                res_r, res_w = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        i, cores[i], graph, functional, exports_by_task,
                        export_arenas, arena_names[i], cmd_r, res_w,
                    ),
                    daemon=True,
                )
                proc.start()
                cmd_r.close()
                res_w.close()
                workers.append(_Worker(proc, cmd_w, res_r, cores[i]))

            # 4. Manager loop: dispatch to idle workers, collect results,
            #    release successors — the scheduler machinery is exactly
            #    the threaded executor's, driven from one process.
            epoch = time.perf_counter()
            versions: Dict = {}  # key -> (version, block, writer wid)
            completions = 0
            idle = deque(range(self.n_workers))
            inflight: Dict[int, object] = {}  # wid -> Task

            if replay:
                for tid, deg in enumerate(indegree):
                    if deg == 0:
                        scheduler.push(graph.tasks[tid])
            else:
                for task in graph.roots():
                    scheduler.push(task)

            while remaining and not errors:
                while idle:
                    try:
                        task = scheduler.pop(idle[0])
                    except BaseException as exc:  # e.g. replay mismatch
                        errors.append(exc)
                        break
                    if task is None:
                        break
                    wid = idle.popleft()
                    w = workers[wid]
                    needed = []
                    for key in imports_by_task.get(task.tid, ()):
                        entry = versions.get(key)
                        if entry is None:
                            continue
                        vno, block, writer = entry
                        if writer == wid or w.seen.get(key) == vno:
                            continue
                        needed.append((key, block))
                        w.seen[key] = vno
                    if hooks is not None:
                        hooks.on_task_start(task, wid, time.perf_counter() - epoch)
                    try:
                        w.cmd_w.send(("task", task.tid, needed))
                    except (BrokenPipeError, OSError):
                        # the worker died while idle; attribute the task
                        errors.append(
                            WorkerCrashError(wid, w.proc.pid, task.name)
                        )
                        break
                    inflight[wid] = task
                if errors:
                    break
                if not inflight:
                    errors.append(
                        RuntimeError(
                            f"scheduler starved with {remaining} tasks remaining"
                        )
                    )
                    break

                res_by_obj = {workers[wid].res_r: wid for wid in inflight}
                sentinel_by_obj = {
                    workers[wid].proc.sentinel: wid for wid in inflight
                }
                ready = connection.wait(
                    list(res_by_obj) + list(sentinel_by_obj)
                )
                messages = []
                for obj in ready:
                    wid = res_by_obj.get(obj)
                    if wid is None:
                        continue
                    try:
                        while obj.poll(0):
                            messages.append((wid, obj.recv()))
                    except (EOFError, OSError):
                        pass  # dead pipe: the sentinel path below reports it
                if not messages:
                    for obj in ready:
                        wid = sentinel_by_obj.get(obj)
                        if wid is not None and not workers[wid].proc.is_alive():
                            task = inflight.pop(wid)
                            errors.append(
                                WorkerCrashError(
                                    wid, workers[wid].proc.pid, task.name
                                )
                            )
                    continue

                for wid, msg in messages:
                    kind = msg[0]
                    if kind == "done":
                        _, tid, exports, side, t0, t1 = msg
                        task = inflight.pop(wid)
                        w = workers[wid]
                        completions += 1
                        for key, block in exports:
                            versions[key] = (completions, block, wid)
                            w.seen[key] = completions
                            if key[0] in storage.parent_kinds():
                                storage.import_region(
                                    key,
                                    export_arenas[block.segment].get_pickle(block),
                                )
                        if side:
                            storage.apply_side_state(side)
                        start, end = t0 - epoch, t1 - epoch
                        if hooks is not None:
                            hooks.on_task_end(task, wid, end)
                        trace.records.append(
                            TaskRecord(
                                tid=task.tid,
                                name=task.name,
                                kind=task.kind,
                                core=wid,
                                start=start,
                                end=end,
                                flops=task.flops,
                                wss_bytes=task.working_set_bytes(),
                            )
                        )
                        remaining -= 1
                        for succ_tid in successors[task.tid]:
                            indegree[succ_tid] -= 1
                            if indegree[succ_tid] == 0:
                                succ = graph.tasks[succ_tid]
                                hint = (
                                    None if replay
                                    else locality_hint(task, succ, wid)
                                )
                                scheduler.push(succ, hint=hint)
                        idle.append(wid)
                    elif kind == "error":
                        _, _w, tid, payload, tb = msg
                        inflight.pop(wid, None)
                        exc: Optional[BaseException] = None
                        if payload is not None:
                            try:
                                exc = pickle.loads(payload)
                            except Exception as undec:
                                tb += f"\n(error payload failed to unpickle: {undec!r})"
                        if exc is None:
                            exc = RuntimeError(
                                f"worker {wid} failed"
                                + (f" in task {tid}" if tid is not None else "")
                                + f":\n{tb}"
                            )
                        errors.append(exc)

            # 5. Graceful shutdown on success: collect worker stats.
            if not errors:
                for wid, w in enumerate(workers):
                    try:
                        w.cmd_w.send(("exit",))
                    except (BrokenPipeError, OSError):
                        continue
                for wid, w in enumerate(workers):
                    try:
                        if w.res_r.poll(5.0):
                            msg = w.res_r.recv()
                            if msg[0] == "bye":
                                worker_stats[wid] = msg[2]
                    except (EOFError, OSError):
                        pass
                    w.proc.join(5.0)
        finally:
            for w in workers:
                if w.proc.is_alive():
                    w.proc.terminate()
                    w.proc.join(2.0)
                if w.proc.is_alive():  # pragma: no cover - hard kill path
                    w.proc.kill()
                    w.proc.join(2.0)
                for conn_end in (w.cmd_w, w.res_r):
                    try:
                        conn_end.close()
                    except OSError:  # pragma: no cover
                        pass
            # Copy shared state back and restore the original bindings
            # while the state arena is still mapped; THEN unlink
            # everything.  Runs on success, payload failure, and worker
            # crash alike — no path leaks a segment.
            if restore:
                originals = {id(view): orig for orig, view in restore}

                def _unshare(a):
                    orig = originals.get(id(a))
                    if orig is None:
                        return a  # materialised after sharing (imports)
                    orig[...] = a
                    return orig

                storage.map_storage(_unshare)
                restore.clear()
            if state_arena is not None:
                state_arena.destroy()
            for arena in export_arenas.values():
                arena.destroy()

        if errors:
            raise errors[0]
        if remaining != 0:  # pragma: no cover - defensive deadlock check
            raise RuntimeError(
                f"executor finished with {remaining} unexecuted tasks"
            )
        trace.scheduler_counters = scheduler.counters
        publish_run(self.metrics, trace, scheduler.counters, trace.scheduler)
        publish_mp_workers(self.metrics, worker_stats)
        return trace


def _round_up(n: int) -> int:
    return (max(1, int(n)) + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT
