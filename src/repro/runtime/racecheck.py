"""Dynamic dependency-declaration checking and schedule fuzzing.

B-Par's correctness rests entirely on the completeness of the ``Region``
in/out/inout declarations: one missing dependence lets a scheduler reorder
a reader past a writer and silently corrupt results — the classic hazard
of OmpSs-style runtimes.  This module *proves* the declarations instead of
trusting them, with three independent instruments:

1. **Access observation** (:func:`observe_accesses`): run a functional
   graph serially with every parameter/state buffer swapped for a
   :class:`TrackedArray` view that records the byte ranges each NumPy
   operation actually reads and writes.  Rebinding writes (``slot = new``)
   are caught by re-resolving every region's storage after each task.
2. **Declaration diff** (:func:`declaration_findings`): any observed byte
   range that falls inside *some* region's storage but is not covered by
   the task's own declarations is an undeclared access — the precise bug
   class a missing ``in(...)``/``out(...)`` clause creates.
3. **Order audit** (:func:`ordering_findings`): every pair of tasks whose
   declared accesses conflict (shared region, at least one writer) must be
   connected by a dependence path; an unordered conflicting pair can run
   concurrently under some legal schedule and is reported as a race.  This
   audit needs no payloads, so it also covers cost-only (simulated)
   graphs.

On top of the checker sits the schedule fuzzer: a
:class:`~repro.runtime.scheduler.FuzzScheduler` permutes ready-queue pop
order under a seed (:func:`fuzz_equivalence_sweep` asserts bitwise-equal
results across seeds), and :func:`record_schedule` /
:func:`replay_schedule` serialise one schedule to JSON and re-execute it
deterministically.  Finally, :func:`mutation_probe` *deletes* one declared
dependence and asserts the order audit notices — the self-test that keeps
the checker itself honest.

Layering: this module depends only on the runtime substrate and NumPy; it
reaches graph-builder storage exclusively through the duck-typed
``GraphBuildResult.region_storage``/``map_storage`` interface.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.runtime.depgraph import TaskGraph, descendants_bitsets
from repro.runtime.executor import ThreadedExecutor
from repro.runtime.scheduler import (
    RecordingScheduler,
    ReplayScheduler,
    ScheduleRecord,
    resolve_scheduler,
)
from repro.runtime.task import AccessMode, Task
from repro.runtime.trace import ExecutionTrace

try:  # NumPy >= 2.0
    from numpy.lib.array_utils import byte_bounds
except ImportError:  # pragma: no cover - NumPy 1.x
    byte_bounds = np.byte_bounds  # type: ignore[attr-defined]

#: half-open byte range ``[lo, hi)`` of one array's memory extent
Interval = Tuple[int, int]


class RaceError(RuntimeError):
    """Raised when dependency validation finds races (see ``report``)."""

    def __init__(self, report: "RaceReport") -> None:
        super().__init__(report.summary())
        self.report = report


# ---------------------------------------------------------------------------
# Access recording
# ---------------------------------------------------------------------------

#: recorder of the task currently executing under observation (observation
#: is strictly serial, so a single module-level slot suffices)
_RECORDER: Optional["AccessRecorder"] = None


class AccessRecorder:
    """Byte ranges one task's payload actually touched."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Set[Interval] = set()
        self.writes: Set[Interval] = set()

    def log_read(self, arr: np.ndarray) -> None:
        if arr.size:
            self.reads.add(byte_bounds(arr))

    def log_write(self, arr: np.ndarray) -> None:
        if arr.size:
            bounds = byte_bounds(arr)
            self.writes.add(bounds)
            self.reads.discard(bounds)  # pure write ranges stay writes


def _plain(a):
    return a.view(np.ndarray) if isinstance(a, TrackedArray) else a


def _strip(obj):
    """Recursively replace TrackedArray with plain views in args/kwargs."""
    if isinstance(obj, TrackedArray):
        return obj.view(np.ndarray)
    if isinstance(obj, tuple):
        return tuple(_strip(o) for o in obj)
    if isinstance(obj, list):
        return [_strip(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items()}
    return obj


def _log_reads(obj, rec: AccessRecorder) -> None:
    if isinstance(obj, np.ndarray):
        rec.log_read(obj)
    elif isinstance(obj, (tuple, list)):
        for o in obj:
            _log_reads(o, rec)
    elif isinstance(obj, dict):
        for o in obj.values():
            _log_reads(o, rec)


class TrackedArray(np.ndarray):
    """ndarray view that reports its participation in NumPy operations.

    While a recorder is active, ufunc inputs log reads, ``out=`` operands
    and ``__setitem__`` targets log writes, and array functions
    (``np.concatenate`` etc.) log every array argument.  Inputs are
    stripped back to plain ndarrays before delegation, so results are
    ordinary arrays and instrumentation never compounds.
    """

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        rec = _RECORDER
        out = kwargs.get("out")
        if rec is not None:
            for a in inputs:
                if isinstance(a, np.ndarray):
                    rec.log_read(a)
            if out:
                for o in out:
                    if isinstance(o, np.ndarray):
                        rec.log_write(o)
            if method == "at" and inputs and isinstance(inputs[0], np.ndarray):
                rec.log_write(inputs[0])
        inputs = tuple(_plain(a) for a in inputs)
        if out:
            kwargs["out"] = tuple(_plain(o) for o in out)
        return getattr(ufunc, method)(*inputs, **kwargs)

    def __array_function__(self, func, types, args, kwargs):
        rec = _RECORDER
        if rec is not None:
            _log_reads(args, rec)
            _log_reads(kwargs, rec)
            out = kwargs.get("out")
            if out is not None:
                _log = rec.log_write
                for o in out if isinstance(out, tuple) else (out,):
                    if isinstance(o, np.ndarray):
                        _log(o)
            if func is np.copyto and args and isinstance(args[0], np.ndarray):
                rec.log_write(args[0])
        return func(*_strip(args), **_strip(kwargs))

    def __setitem__(self, key, value):
        rec = _RECORDER
        if rec is not None:
            # ``A[I:] += B`` routes through here with ``self`` the *full*
            # array; log the bounds of the indexed sub-view, not the whole
            # buffer, or every slice-write looks like a write to its
            # neighbours.  Fancy indexing yields a copy (unusable bounds),
            # so fall back to the conservative whole-array extent.
            target = self.view(np.ndarray)
            sub = None
            try:
                cand = target[key]
            except (IndexError, TypeError, ValueError):
                # the only errors NumPy indexing raises for a key that
                # cannot be materialised as a view (bad index, bad type,
                # shape-mismatched mask); fall back to the conservative
                # whole-array extent.  Anything else propagates.
                cand = None
            if (
                isinstance(cand, np.ndarray)
                and cand.size
                and np.shares_memory(cand, target)
            ):
                sub = cand
            rec.log_write(sub if sub is not None else target)
            if isinstance(value, np.ndarray):
                rec.log_read(value)
        super().__setitem__(key, _plain(value))


def _wrap(a: np.ndarray) -> np.ndarray:
    return a if isinstance(a, TrackedArray) else a.view(TrackedArray)


def _unwrap(a: np.ndarray) -> np.ndarray:
    return a.view(np.ndarray) if isinstance(a, TrackedArray) else a


# ---------------------------------------------------------------------------
# Findings and report
# ---------------------------------------------------------------------------


@dataclass
class RaceFinding:
    """One violation: an undeclared access or an unordered conflict."""

    kind: str  # "undeclared_read" | "undeclared_write" | "unordered_conflict"
    tid: int
    task: str
    region: str
    other_tid: Optional[int] = None
    other: Optional[str] = None
    detail: str = ""

    def describe(self) -> str:
        if self.kind == "unordered_conflict":
            return (
                f"[{self.kind}] {self.task} (tid {self.tid}) and {self.other} "
                f"(tid {self.other_tid}) conflict on region {self.region} with "
                f"no dependence path between them{': ' + self.detail if self.detail else ''}"
            )
        if self.kind.startswith("plan_"):
            return f"[{self.kind}] {self.task} (tid {self.tid}): {self.detail}"
        return (
            f"[{self.kind}] {self.task} (tid {self.tid}) touched region "
            f"{self.region} without declaring it"
            f"{': ' + self.detail if self.detail else ''}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "tid": self.tid,
            "task": self.task,
            "region": self.region,
            "other_tid": self.other_tid,
            "other": self.other,
            "detail": self.detail,
        }


@dataclass
class RaceReport:
    """All findings of one check plus coverage statistics."""

    findings: List[RaceFinding] = field(default_factory=list)
    n_tasks: int = 0
    n_regions: int = 0
    observed_tasks: int = 0
    checked_pairs: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    def summary(self) -> str:
        if self.ok:
            return (
                f"racecheck OK: {self.n_tasks} tasks, {self.n_regions} regions, "
                f"{self.observed_tasks} payloads observed, "
                f"{self.checked_pairs} conflicting pairs ordered"
            )
        kinds = ", ".join(f"{k}: {v}" for k, v in sorted(self.by_kind().items()))
        return f"racecheck FAILED ({len(self.findings)} findings — {kinds})"

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n_tasks": self.n_tasks,
            "n_regions": self.n_regions,
            "observed_tasks": self.observed_tasks,
            "checked_pairs": self.checked_pairs,
            "findings": [f.to_dict() for f in self.findings],
        }


# ---------------------------------------------------------------------------
# Observation: instrumented serial execution
# ---------------------------------------------------------------------------


@dataclass
class TaskObservation:
    """Observed accesses of one task (byte ranges, declaration-agnostic)."""

    reads: Set[Interval] = field(default_factory=set)
    writes: Set[Interval] = field(default_factory=set)
    #: region keys whose storage was rebound (slot = new array) by the task
    rebound: List = field(default_factory=list)


def _region_bounds(storage: Sequence[np.ndarray]) -> Tuple[Interval, ...]:
    return tuple(byte_bounds(a) for a in storage if a.size)


def observe_accesses(result) -> Dict[int, TaskObservation]:
    """Run a functional graph serially, recording actual accesses per task.

    Executes payloads in registration order (the reference schedule), so
    the graph's numerics run exactly once — pass a freshly built result
    and treat its buffers as consumed.  Returns one
    :class:`TaskObservation` per tid.
    """
    global _RECORDER
    if not getattr(result, "functional", False):
        raise ValueError("observe_accesses needs a functional graph (x=... build)")
    result.map_storage(_wrap)
    regions = {r.key: r for r in result.regions.regions()}

    # Bounds cache keyed by the storage arrays' identities: wrapping is
    # idempotent, so regions a task leaves alone resolve to the *same*
    # array objects as last time and skip the byte_bounds recomputation.
    # Holding the arrays (not just bounds) also pins their buffers, so no
    # address is freed and reused mid-task, which would mask a rebind.
    cache: Dict = {}

    def resolve_all() -> Dict:
        out = {}
        for key in regions:
            storage = result.region_storage(key)
            ids = tuple(map(id, storage))
            hit = cache.get(key)
            if hit is not None and hit[0] == ids:
                out[key] = hit[1]
            else:
                entry = (storage, _region_bounds(storage))
                cache[key] = (ids, entry)
                out[key] = entry
        return out

    observations: Dict[int, TaskObservation] = {}
    pre = resolve_all()
    for task in result.graph:
        obs = TaskObservation()
        if task.fn is not None:
            rec = AccessRecorder()
            _RECORDER = rec
            try:
                task.run()
            finally:
                _RECORDER = None
            obs.reads = rec.reads
            obs.writes = rec.writes
        result.map_storage(_wrap)  # newly stored slots become tracked
        post = resolve_all()
        for key, (_, bounds) in post.items():
            if bounds != pre[key][1]:
                obs.rebound.append(key)
        observations[task.tid] = obs
        obs.pre, obs.post = pre, post  # type: ignore[attr-defined]
        pre = post
    result.map_storage(_unwrap)
    return observations


def _subtract(interval: Interval, cover: List[Interval]) -> List[Interval]:
    """Parts of ``interval`` not covered by any interval in ``cover``."""
    lo, hi = interval
    segments = [(lo, hi)]
    for clo, chi in cover:
        nxt: List[Interval] = []
        for slo, shi in segments:
            if chi <= slo or clo >= shi:
                nxt.append((slo, shi))
                continue
            if slo < clo:
                nxt.append((slo, clo))
            if chi < shi:
                nxt.append((chi, shi))
        segments = nxt
        if not segments:
            break
    return segments


class _IntervalIndex:
    """Sorted region-interval index for byte-range → region attribution."""

    def __init__(self, entries: Iterable[Tuple[int, int, object]]) -> None:
        self._entries = sorted(set(entries))
        self._los = [e[0] for e in self._entries]

    def overlapping(self, lo: int, hi: int) -> List[Tuple[int, int, object]]:
        out = []
        idx = bisect_right(self._los, lo)
        # entries starting at or before lo may still extend past it
        j = idx - 1
        while j >= 0:
            elo, ehi, key = self._entries[j]
            if ehi > lo:
                out.append(self._entries[j])
                j -= 1
            else:
                # region extents never nest across allocations, so the
                # first non-overlap ends the leftward scan
                break
        j = idx
        while j < len(self._entries) and self._entries[j][0] < hi:
            out.append(self._entries[j])
            j += 1
        return out


def declaration_findings(
    result, observations: Dict[int, TaskObservation]
) -> List[RaceFinding]:
    """Diff observed accesses against each task's declared regions."""
    findings: List[RaceFinding] = []
    for task in result.graph:
        obs = observations.get(task.tid)
        if obs is None:
            continue
        pre, post = obs.pre, obs.post  # type: ignore[attr-defined]

        def intervals(key) -> List[Interval]:
            return list(pre[key][1]) + [
                b for b in post[key][1] if b not in pre[key][1]
            ]

        entries = []
        for key in pre:
            for lo, hi in intervals(key):
                entries.append((lo, hi, key))
        index = _IntervalIndex(entries)

        declared_read_cover: List[Interval] = []
        declared_write_cover: List[Interval] = []
        for region in task.regions():
            mode = task.access_mode(region)
            cover = intervals(region.key)
            declared_read_cover.extend(cover)  # any declaration orders reads
            if mode in (AccessMode.OUT, AccessMode.INOUT):
                declared_write_cover.extend(cover)

        def audit(ranges: Set[Interval], cover: List[Interval], kind: str) -> None:
            hit: Set = set()
            for lo, hi in sorted(ranges):
                for ulo, uhi in _subtract((lo, hi), cover):
                    for _, _, key in index.overlapping(ulo, uhi):
                        if key not in hit:
                            hit.add(key)
                            findings.append(
                                RaceFinding(
                                    kind=kind,
                                    tid=task.tid,
                                    task=task.name,
                                    region=repr(key),
                                    detail=f"touched bytes [{ulo}, {uhi})",
                                )
                            )

        audit(obs.reads, declared_read_cover, "undeclared_read")
        audit(obs.writes, declared_write_cover, "undeclared_write")

        declared_write_keys = {r.key for r in task.writes()}
        for key in obs.rebound:
            if key not in declared_write_keys:
                findings.append(
                    RaceFinding(
                        kind="undeclared_write",
                        tid=task.tid,
                        task=task.name,
                        region=repr(key),
                        detail="storage slot was rebound without an out/inout declaration",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Ordering audit
# ---------------------------------------------------------------------------


def _declared_conflict(a: Task, b: Task) -> Optional[object]:
    """A region key both tasks touch with at least one writer, if any."""
    b_writes = {id(r): r for r in b.writes()}
    b_all = {id(r): r for r in b.regions()}
    for r in a.writes():
        hit = b_all.get(id(r))
        if hit is not None:
            return hit.key
    for r in a.reads():
        hit = b_writes.get(id(r))
        if hit is not None:
            return hit.key
    return None


def ordering_findings(
    graph: TaskGraph,
    successors: Optional[List[List[int]]] = None,
    max_findings: Optional[int] = None,
) -> Tuple[List[RaceFinding], int]:
    """Audit that every declared-conflicting task pair is ordered.

    ``successors`` overrides the graph's edge lists (used by the mutation
    self-test to re-audit a graph with one dependence deleted).  Returns
    ``(findings, checked_pairs)``.
    """
    succ = graph.successors if successors is None else successors
    desc = descendants_bitsets(succ)
    tasks = graph.tasks

    readers: Dict[int, List[int]] = {}
    writers: Dict[int, List[int]] = {}
    region_of: Dict[int, object] = {}
    for task in tasks:
        for r in task.reads():
            readers.setdefault(id(r), []).append(task.tid)
            region_of[id(r)] = r
        for r in task.writes():
            writers.setdefault(id(r), []).append(task.tid)
            region_of[id(r)] = r

    findings: List[RaceFinding] = []
    seen_pairs: Set[Tuple[int, int]] = set()
    reported: Set[Tuple[int, int]] = set()
    for rid, wlist in writers.items():
        accessors = sorted(set(wlist) | set(readers.get(rid, [])))
        for i, w in enumerate(wlist):
            for other in accessors:
                if other == w:
                    continue
                pair = (w, other) if w < other else (other, w)
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                a, b = pair
                if not ((desc[a] >> b) & 1 or (desc[b] >> a) & 1):
                    if pair not in reported:
                        reported.add(pair)
                        key = region_of[rid].key
                        findings.append(
                            RaceFinding(
                                kind="unordered_conflict",
                                tid=a,
                                task=tasks[a].name,
                                region=repr(key),
                                other_tid=b,
                                other=tasks[b].name,
                                detail="both may run concurrently under a legal schedule",
                            )
                        )
                        if max_findings is not None and len(findings) >= max_findings:
                            return findings, len(seen_pairs)
    return findings, len(seen_pairs)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_build(
    result,
    *,
    observe: Optional[bool] = None,
    ordering: bool = True,
) -> RaceReport:
    """Full race check of one built graph.

    ``observe`` (default: functional graphs only) executes the payloads
    serially under instrumentation and diffs observed vs declared
    accesses; ``ordering`` audits that declared-conflicting pairs are
    ordered.  Pass a freshly built result when observing — the numerics
    run once (weight updates included).
    """
    if observe is None:
        observe = bool(getattr(result, "functional", False))
    report = RaceReport(
        n_tasks=len(result.graph), n_regions=len(result.regions)
    )
    if observe:
        observations = observe_accesses(result)
        report.observed_tasks = sum(
            1 for t in result.graph if t.fn is not None
        )
        report.findings.extend(declaration_findings(result, observations))
    if ordering:
        findings, pairs = ordering_findings(result.graph)
        report.findings.extend(findings)
        report.checked_pairs = pairs
    return report


# ---------------------------------------------------------------------------
# Mutation self-test
# ---------------------------------------------------------------------------


def order_defining_edges(graph: TaskGraph) -> List[Tuple[int, int]]:
    """Edges whose removal actually relaxes the partial order.

    An edge ``a → b`` is *redundant* when another path ``a → … → b``
    exists (dependence still enforced transitively); deleting it changes
    nothing and genuinely introduces no race.  The mutation self-test
    therefore only deletes order-defining edges — and additionally only
    those whose endpoints conflict on a declared region, since a barrier
    edge with no shared data is not detectable from declarations.
    """
    redundant = set(graph.redundant_edges())
    return [
        (a, b)
        for a, b in graph.edges()
        if (a, b) not in redundant
        and _declared_conflict(graph.tasks[a], graph.tasks[b]) is not None
    ]


def probe_edge(graph: TaskGraph, edge: Tuple[int, int]) -> dict:
    """Delete dependence ``edge`` and re-run the ordering audit.

    The mutation primitive shared by :func:`mutation_probe` (one seeded
    edge) and the symbolic verifier's exhaustive per-edge sweep
    (:mod:`repro.analysis.verify`): ``detected`` is True iff the audit
    flags exactly the deleted edge's endpoints as an unordered
    conflicting pair.
    """
    a, b = edge
    mutated = [list(s) for s in graph.successors]
    mutated[a].remove(b)
    findings, pairs = ordering_findings(graph, successors=mutated)
    flagged = any(
        {f.tid, f.other_tid} == {a, b} for f in findings
    )
    return {
        "edge": (a, b),
        "edge_names": (graph.tasks[a].name, graph.tasks[b].name),
        "region": repr(_declared_conflict(graph.tasks[a], graph.tasks[b])),
        "findings": len(findings),
        "checked_pairs": pairs,
        "detected": flagged,
    }


def mutation_probe(graph: TaskGraph, seed: int = 0) -> dict:
    """Delete one random declared dependence; ask the checker to notice.

    Picks a seeded order-defining edge, removes it, and re-runs the
    ordering audit.  ``detected`` must be True for a sound checker: the
    deleted edge's endpoints conflict on a region and are no longer
    connected.  This is the repo's guard against the checker itself
    rotting into silence.
    """
    candidates = order_defining_edges(graph)
    if not candidates:
        raise ValueError("graph has no order-defining conflicting edges to delete")
    rng = random.Random(seed)
    result = probe_edge(graph, candidates[rng.randrange(len(candidates))])
    result["candidates"] = len(candidates)
    return result


# ---------------------------------------------------------------------------
# Schedule fuzzing, record and replay
# ---------------------------------------------------------------------------


def record_schedule(
    graph: TaskGraph, scheduler="fuzz:0", n_workers: int = 1,
    executor_factory=ThreadedExecutor,
) -> Tuple[ScheduleRecord, ExecutionTrace]:
    """Execute ``graph`` recording the scheduler's pop order.

    With ``n_workers=1`` the recorded order is a pure function of the
    scheduler (reproducible); more workers record whatever interleaving
    the host produced — still a valid, replayable schedule.
    ``executor_factory`` picks the substrate — any callable accepting
    ``(n_workers, scheduler)``, e.g. :class:`ThreadedExecutor` (default)
    or :class:`~repro.runtime.mpexec.MultiprocessExecutor`.
    """
    recording = RecordingScheduler(resolve_scheduler(scheduler, n_workers))
    trace = executor_factory(n_workers, recording).run(graph)
    return recording.record(), trace


def replay_schedule(
    graph: TaskGraph, record: ScheduleRecord, n_workers: int = 1,
    executor_factory=ThreadedExecutor,
) -> ExecutionTrace:
    """Re-execute ``graph`` releasing tasks exactly in ``record`` order."""
    if len(record.order) != len(graph):
        raise ValueError(
            f"schedule records {len(record.order)} tasks, graph has {len(graph)}"
        )
    return executor_factory(n_workers, ReplayScheduler(record)).run(graph)


@dataclass
class FuzzMismatch:
    """One fuzz seed whose results diverged from the reference schedule."""

    seed: int
    arrays: List[str]


@dataclass
class FuzzSweepResult:
    """Outcome of a multi-seed schedule-fuzzing sweep."""

    seeds: List[int]
    mismatches: List[FuzzMismatch]
    reference_scheduler: str = "fifo"

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return f"fuzz OK: {len(self.seeds)} seeds bitwise-identical to reference"
        bad = ", ".join(str(m.seed) for m in self.mismatches)
        return f"fuzz FAILED: seeds [{bad}] diverged from the reference schedule"

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seeds": self.seeds,
            "reference_scheduler": self.reference_scheduler,
            "mismatches": [
                {"seed": m.seed, "arrays": m.arrays} for m in self.mismatches
            ],
        }


def _result_fingerprint(result) -> Dict[str, bytes]:
    """Bitwise snapshot of params, per-chunk gradients and logits after a run."""
    out: Dict[str, bytes] = {}
    if result.params is not None:
        for name, arr in result.params.arrays():
            out[f"params.{name}"] = arr.tobytes()
    if result.chunks:
        for mb, chunk in enumerate(result.chunks):
            if chunk.grads is not None:
                for name, arr in chunk.grads.arrays():
                    out[f"chunk{mb}.grads.{name}"] = arr.tobytes()
            for t, arr in enumerate(getattr(chunk, "logits", None) or []):
                if arr is not None:
                    out[f"chunk{mb}.logits.{t}"] = arr.tobytes()
    return out


def fuzz_equivalence_sweep(
    make_build: Callable[[], object],
    seeds: Iterable[int],
    *,
    n_workers: int = 1,
    reference_scheduler: str = "fifo",
    executor_factory=ThreadedExecutor,
) -> FuzzSweepResult:
    """Run ``make_build()`` once per schedule and compare results bitwise.

    ``make_build`` must return a *freshly built* functional graph each
    call (fresh params from the same deterministic init), so every
    schedule starts from identical state.  The reference schedule (FIFO
    by default) fixes the expected bits; every fuzz seed must reproduce
    them exactly — the dataflow-determinism claim of the paper, asserted
    rather than assumed.  The reference always runs threaded; the fuzzed
    legs run on ``executor_factory`` (any ``(n_workers, scheduler)``
    callable), so passing
    :class:`~repro.runtime.mpexec.MultiprocessExecutor` additionally
    asserts cross-substrate determinism.
    """
    seeds = list(seeds)
    reference = make_build()
    ThreadedExecutor(n_workers, resolve_scheduler(reference_scheduler, n_workers)).run(
        reference.graph
    )
    expected = _result_fingerprint(reference)

    mismatches: List[FuzzMismatch] = []
    for seed in seeds:
        result = make_build()
        executor_factory(n_workers, f"fuzz:{seed}").run(result.graph)
        got = _result_fingerprint(result)
        bad = sorted(
            name
            for name in expected
            if got.get(name) != expected[name]
        )
        if bad or set(got) != set(expected):
            bad = bad or sorted(set(got) ^ set(expected))
            mismatches.append(FuzzMismatch(seed=seed, arrays=bad))
    return FuzzSweepResult(
        seeds=seeds, mismatches=mismatches, reference_scheduler=reference_scheduler
    )


# ---------------------------------------------------------------------------
# Compiled-plan auditing
# ---------------------------------------------------------------------------


def check_plan(graph: TaskGraph, plan) -> RaceReport:
    """Audit a compiled plan against the graph's *declared* dependences.

    Replay safety rests on indegree gating over ``plan.successors`` — a
    declared edge ``a → b`` is enforced at replay time iff the transitive
    closure of the plan's (reduced) edge set contains a path ``a → … → b``.
    The release *order* alone is not sufficient: a predecessor popped
    earlier may still be running on another worker.  Three audits:

    * ``plan_structure_mismatch`` — task count, name drift, or a release
      order that is not a permutation of the graph's tids;
    * ``plan_order_violation`` — the release order is not topological over
      the plan's own edges (replay could stall: a task released before one
      of its plan-predecessors);
    * ``plan_dependence_violation`` — a declared dependence not covered by
      the closure of the plan's edges (two conflicting tasks could overlap).

    ``checked_pairs`` counts the declared edges audited for closure cover.
    """
    report = RaceReport(n_tasks=len(graph))
    try:
        plan.validate(graph)
    except ValueError as exc:
        report.findings.append(
            RaceFinding(
                kind="plan_structure_mismatch",
                tid=-1,
                task="<plan>",
                region="",
                detail=str(exc),
            )
        )
        return report
    n = len(graph)
    if sorted(plan.order) != list(range(n)):
        report.findings.append(
            RaceFinding(
                kind="plan_structure_mismatch",
                tid=-1,
                task="<plan>",
                region="",
                detail="release order is not a permutation of the graph's tids",
            )
        )
        return report
    for a, succs in enumerate(plan.successors):
        for b in succs:
            if not 0 <= b < n:
                report.findings.append(
                    RaceFinding(
                        kind="plan_structure_mismatch",
                        tid=a,
                        task=graph.tasks[a].name,
                        region="",
                        detail=f"plan edge {a} → {b} names an unknown tid",
                    )
                )
                return report

    pos = {tid: i for i, tid in enumerate(plan.order)}
    for a, succs in enumerate(plan.successors):
        for b in succs:
            if pos[a] >= pos[b]:
                report.findings.append(
                    RaceFinding(
                        kind="plan_order_violation",
                        tid=a,
                        task=graph.tasks[a].name,
                        other_tid=b,
                        other=graph.tasks[b].name,
                        region="",
                        detail=(
                            f"{graph.tasks[b].name} (tid {b}) is released at "
                            f"step {pos[b]}, before its plan-predecessor "
                            f"{graph.tasks[a].name} (tid {a}, step {pos[a]})"
                        ),
                    )
                )

    desc = descendants_bitsets(plan.successors)
    checked = 0
    for a in range(n):
        for b in graph.successors[a]:
            checked += 1
            if not (desc[a] >> b) & 1:
                report.findings.append(
                    RaceFinding(
                        kind="plan_dependence_violation",
                        tid=a,
                        task=graph.tasks[a].name,
                        other_tid=b,
                        other=graph.tasks[b].name,
                        region="",
                        detail=(
                            f"declared dependence {graph.tasks[a].name} → "
                            f"{graph.tasks[b].name} has no covering path in "
                            "the plan's edge set — replay may overlap them"
                        ),
                    )
                )
    report.checked_pairs = checked
    return report


def replay_plan(
    graph: TaskGraph, plan, n_workers: int = 1, check: bool = True,
    executor_factory=ThreadedExecutor,
):
    """Execute ``graph`` from a compiled plan, auditing it first.

    With ``check`` (default) a failed :func:`check_plan` raises
    :class:`RaceError` before any payload runs; the returned value is the
    :class:`~repro.runtime.trace.ExecutionTrace` of the replay.
    """
    if check:
        report = check_plan(graph, plan)
        if not report.ok:
            raise RaceError(report)
    return executor_factory(n_workers).run(graph, plan=plan)


def plan_equivalence_check(
    make_build: Callable[[], object],
    *,
    n_workers: int = 1,
    reference_scheduler: str = "fifo",
    executor_factory=ThreadedExecutor,
) -> List[str]:
    """Compiled-plan replay vs a dynamic schedule, compared bitwise.

    Builds the graph twice from identical deterministic state, runs the
    reference dynamically and the second build from a freshly compiled
    plan, and returns the names of arrays whose bits differ (empty list =
    equivalent) — the compiled-path counterpart of
    :func:`fuzz_equivalence_sweep`.  The reference leg always runs
    threaded; the replay leg runs on ``executor_factory``.
    """
    # Late import: repro.compile sits above the runtime in the layering.
    from repro.compile import compile_graph

    reference = make_build()
    ThreadedExecutor(n_workers, resolve_scheduler(reference_scheduler, n_workers)).run(
        reference.graph
    )
    expected = _result_fingerprint(reference)

    result = make_build()
    plan = compile_graph(result.graph, n_workers=n_workers)
    replay_plan(result.graph, plan, n_workers=n_workers,
                executor_factory=executor_factory)
    got = _result_fingerprint(result)
    bad = sorted(name for name in expected if got.get(name) != expected[name])
    if set(got) != set(expected):
        bad = sorted(set(bad) | (set(got) ^ set(expected)))
    return bad
