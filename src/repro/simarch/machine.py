"""Machine description for the simulated executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of a modelled multi-core CPU platform.

    The defaults are meaningless; use :func:`repro.simarch.presets.xeon_8160_2s`
    for the paper's platform.  All throughput figures are *sustained
    effective* rates (MKL-sequential GEMM on one core), not peaks.
    """

    name: str
    n_sockets: int
    cores_per_socket: int
    freq_ghz: float
    #: sustained single-core GEMM throughput (GF/s) for large matrices
    gemm_gflops: float
    #: sustained single-core throughput (GF/s) for elementwise kernels
    elementwise_gflops: float
    #: per-core private L2 capacity (bytes)
    l2_bytes: int
    #: per-socket shared L3 capacity (bytes)
    l3_bytes: int
    #: L3-to-core bandwidth per core (GB/s)
    l3_bw_gbps: float
    #: local DRAM bandwidth per socket (GB/s), shared by the socket's cores
    mem_bw_gbps: float
    #: multiplicative slowdown for remote-socket (NUMA) DRAM traffic
    numa_factor: float
    #: fixed runtime overhead charged per task (seconds): creation +
    #: dependence resolution + scheduling + synchronisation
    task_overhead_s: float
    #: estimated retired instructions per floating-point operation
    #: (vector width, FMA fusion, loop overhead folded into one constant)
    instr_per_flop: float = 0.105
    #: GEMM size (flops) below which vector/blocking efficiency falls off:
    #: effective rate = gemm_gflops * flops / (flops + this)
    small_gemm_ref_flops: float = 2.0e6
    #: single-core DRAM streaming bandwidth cap (GB/s) — one core cannot
    #: saturate the socket's controllers (latency/MLP-bound)
    core_mem_bw_gbps: float = 12.0
    #: serial task-creation cost on the master thread (seconds per task);
    #: OmpSs instantiates the task graph sequentially, so very fine-grained
    #: decompositions (high mbs) pay a creation tax (§IV-B, Fig. 3)
    task_create_s: float = 3e-6

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    def socket_of(self, core: int) -> int:
        """Socket that owns ``core`` (cores are numbered socket-major)."""
        if core < 0 or core >= self.n_cores:
            raise ValueError(f"core {core} out of range for {self.n_cores}-core machine")
        return core // self.cores_per_socket

    def cores_of(self, socket: int) -> range:
        base = socket * self.cores_per_socket
        return range(base, base + self.cores_per_socket)

    def with_cores(self, n_cores: int) -> "MachineSpec":
        """Restrict the machine to its first ``n_cores`` cores.

        Mirrors the paper's methodology: runs on ≤ 24 cores are pinned to a
        single socket (no NUMA); larger counts span both sockets.  Cache and
        bandwidth per socket are unchanged — a 4-core run still owns a full
        33 MiB L3, exactly as on the real machine.
        """
        if n_cores < 1 or n_cores > self.n_cores:
            raise ValueError(f"cannot restrict {self.name} to {n_cores} cores")
        full_sockets, rem = divmod(n_cores, self.cores_per_socket)
        n_sockets = full_sockets + (1 if rem else 0)
        # Keep cores_per_socket so socket_of() keeps the original topology;
        # we express the restriction as a machine with possibly fewer sockets
        # and a partial last socket handled by `usable_cores`.
        return MachineSpec(
            name=f"{self.name}[{n_cores}c]",
            n_sockets=n_sockets,
            cores_per_socket=self.cores_per_socket if n_cores >= self.cores_per_socket else n_cores,
            freq_ghz=self.freq_ghz,
            gemm_gflops=self.gemm_gflops,
            elementwise_gflops=self.elementwise_gflops,
            l2_bytes=self.l2_bytes,
            l3_bytes=self.l3_bytes,
            l3_bw_gbps=self.l3_bw_gbps,
            mem_bw_gbps=self.mem_bw_gbps,
            core_mem_bw_gbps=self.core_mem_bw_gbps,
            numa_factor=self.numa_factor,
            task_overhead_s=self.task_overhead_s,
            instr_per_flop=self.instr_per_flop,
            small_gemm_ref_flops=self.small_gemm_ref_flops,
            task_create_s=self.task_create_s,
        )


def usable_cores(machine: MachineSpec, n_cores: int) -> range:
    """The first ``n_cores`` core ids of ``machine`` (validated)."""
    if n_cores < 1 or n_cores > machine.n_cores:
        raise ValueError(f"{n_cores} cores requested on {machine.n_cores}-core machine")
    return range(n_cores)
