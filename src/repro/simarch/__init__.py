"""Simulated hardware substrate.

The paper evaluates on a dual-socket 2×24-core Xeon Platinum 8160 and a
Tesla V100.  Neither is available here, and the CPython GIL prevents a pure
Python runtime from exhibiting 48-way task parallelism, so we model the
machine instead (see DESIGN.md §2): per-core GEMM throughput, a
region-granularity L2/L3 LRU cache model, NUMA first-touch homing with a
remote-access bandwidth penalty, shared per-socket memory bandwidth, and a
per-task runtime overhead.  The discrete-event executor
(:class:`repro.runtime.simexec.SimulatedExecutor`) charges each task a duration
from :class:`~repro.simarch.costmodel.CostModel` and the analysis layer
derives per-task IPC / L3-MPKI estimates (:mod:`repro.simarch.metrics`)
for the Fig. 7 locality study.
"""

from repro.simarch.machine import MachineSpec
from repro.simarch.cache import CacheModel, CacheAccess
from repro.simarch.costmodel import CostModel, TaskCost
from repro.simarch.presets import xeon_8160_2s, tesla_v100, GPUSpec

__all__ = [
    "MachineSpec",
    "CacheModel",
    "CacheAccess",
    "CostModel",
    "TaskCost",
    "xeon_8160_2s",
    "tesla_v100",
    "GPUSpec",
]
