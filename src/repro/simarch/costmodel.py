"""Per-task duration model (roofline with cache/NUMA classification).

``duration = overhead + max(compute, memory) + κ·min(compute, memory)``
with κ = ``RESIDUAL`` (the un-overlapped fraction of the faster component).

* ``compute`` — task flops over the core's sustained rate for the task's
  kind (GEMM-dominated cell updates vs elementwise merges/updates).
* ``memory`` — classified traffic over the bandwidth of the level serving
  it; DRAM bandwidth is shared by the tasks concurrently running on the
  socket, and remote-socket traffic pays the NUMA factor.
* κ — the un-overlapped fraction of the faster component (hardware
  prefetchers hide the slower component only partially).

Instruction counts (for IPC/MPKI estimation) fold vector width and loop
overhead into ``machine.instr_per_flop``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.runtime.task import Task
from repro.simarch.cache import CacheAccess, CacheModel
from repro.simarch.machine import MachineSpec

#: Traffic multiplier per task kind: how many times a kernel sweeps its
#: working set.  A blocked GEMM whose operand panel exceeds the L2 re-reads
#: operands once per cache block; elementwise kernels stream exactly once.
DEFAULT_REUSE: Dict[str, float] = {
    "cell": 2.0,       # 4-gate GEMM pair, operands swept per N-panel
    "cell_bwd": 2.0,
    "proj": 2.0,       # hoisted X@W_x block GEMM (builders annotate by rows)
    "proj_bwd": 2.0,   # hoisted X^T·dZ / dZ·W_x^T block GEMMs
    "merge": 1.0,
    "merge_bwd": 1.0,
    "head": 2.0,
    "head_bwd": 2.0,
    "loss": 1.0,
    "grad_reduce": 1.0,
    "weight_update": 1.0,
    "barrier": 0.0,
    "task": 1.0,
}

#: Task kinds whose arithmetic runs at GEMM rate (everything else runs at
#: the elementwise rate).
GEMM_KINDS = {"cell", "cell_bwd", "proj", "proj_bwd", "head", "head_bwd"}

#: Fraction of the faster roofline component that does NOT overlap with the
#: slower one (prefetchers hide memory behind compute only partially).
RESIDUAL = 0.7


@dataclass
class TaskCost:
    """Outcome of costing one task dispatch."""

    duration: float
    compute_time: float
    mem_time: float
    overhead: float
    instructions: float
    access: CacheAccess


class CostModel:
    """Charge durations for tasks dispatched on a simulated machine."""

    def __init__(self, machine: MachineSpec, reuse: Dict[str, float] = None) -> None:
        self.machine = machine
        self.reuse = dict(DEFAULT_REUSE)
        if reuse:
            self.reuse.update(reuse)

    def compute_time(self, task: Task) -> float:
        """Pure arithmetic time of ``task`` on one core (no stalls)."""
        if task.flops <= 0:
            return 0.0
        if task.kind in GEMM_KINDS:
            rate = self.machine.gemm_gflops
            # Small GEMMs cannot amortise vectorisation/blocking overhead.
            # Builders annotate tasks that issue several GEMM calls
            # (``fusion="off"``'s per-gate calls, a wavefront tile's
            # per-step calls) with ``gemm_calls``: the penalty applies to
            # the *per-call* problem size, not the task total.
            ref = self.machine.small_gemm_ref_flops
            if ref > 0:
                calls = max(1, int(task.meta.get("gemm_calls", 1)))
                per_call = task.flops / calls
                rate *= per_call / (per_call + ref)
        else:
            rate = self.machine.elementwise_gflops
        return task.flops / (rate * 1e9)

    def standalone(self, task: Task) -> float:
        """Context-free duration of ``task``: no cache residency, no
        bandwidth sharing — declared bytes stream once per sweep from the
        core's DRAM port.  A deterministic per-task weight for
        critical-path accounting (duration-weighted span), comparable
        across graphs built for the same machine.
        """
        m = self.machine
        compute = self.compute_time(task)
        reuse = float(task.meta.get("reuse", self.reuse.get(task.kind, 1.0)))
        nbytes = sum(r.nbytes for r in task.regions()) * reuse
        mem = nbytes / (m.core_mem_bw_gbps * 1e9)
        overhead = m.task_overhead_s + float(task.meta.get("extra_overhead_s", 0.0))
        return overhead + max(compute, mem) + RESIDUAL * min(compute, mem)

    def cost(
        self,
        task: Task,
        core: int,
        cache: CacheModel,
        active_on_socket: int = 1,
    ) -> TaskCost:
        """Duration of ``task`` on ``core`` given current cache residency.

        ``active_on_socket`` is the number of tasks concurrently executing
        on the core's socket (including this one); DRAM bandwidth is split
        between them.
        """
        m = self.machine
        compute = self.compute_time(task)
        # Builders annotate GEMM tasks with their sweep count (grows with
        # the GEMM's row count); fall back to the per-kind default.
        reuse = float(task.meta.get("reuse", self.reuse.get(task.kind, 1.0)))
        acc = cache.access(core, task, reuse=reuse)

        # Roughly half the socket's active tasks stream from DRAM at any
        # instant (the rest sit in their compute phase), so bandwidth is
        # split among active/2 streams.
        share = max(1.0, min(active_on_socket, m.cores_per_socket) / 2.0)
        dram_bw = min(m.mem_bw_gbps / share, m.core_mem_bw_gbps) * 1e9
        mem = (
            acc.l2_bytes / (m.l3_bw_gbps * 3e9)  # L2 feeds ~3x faster than L3
            + acc.l3_bytes / (m.l3_bw_gbps * 1e9)
            + acc.local_mem_bytes / dram_bw
            + acc.remote_mem_bytes / (dram_bw / m.numa_factor)
        )
        body = max(compute, mem) + RESIDUAL * min(compute, mem)
        # Framework baselines attach extra per-op dispatch/sync latency.
        overhead = m.task_overhead_s + float(task.meta.get("extra_overhead_s", 0.0))
        instructions = task.flops * m.instr_per_flop + acc.total_bytes / 64.0
        return TaskCost(
            duration=overhead + body,
            compute_time=compute,
            mem_time=mem,
            overhead=overhead,
            instructions=instructions,
            access=acc,
        )
