"""Region-granularity cache model.

Tracks which data regions currently reside in each core's private L2 and
each socket's shared L3 with LRU replacement.  When the simulated executor
dispatches a task to a core, :meth:`CacheModel.access` classifies the
task's traffic per region — L2 hit, L3 hit, local-DRAM miss, or
remote-socket (NUMA) miss — and updates residency.

The model is deliberately coarse (whole regions, not lines): the paper's
locality claims are about *task-level* reuse — running the next cell of a
layer on the core that still holds the layer's weights — which is exactly
region-level residency.  Traffic volumes are scaled by a per-kind reuse
factor because a GEMM streams its operands several times when they exceed
the L2 (see :class:`repro.simarch.costmodel.CostModel`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.runtime.task import INTERLEAVED_HOME, Region, Task
from repro.simarch.machine import MachineSpec


@dataclass
class CacheAccess:
    """Classified traffic (bytes) of one task dispatch."""

    l2_bytes: int = 0
    l3_bytes: int = 0
    local_mem_bytes: int = 0
    remote_mem_bytes: int = 0

    @property
    def miss_bytes(self) -> int:
        """Bytes served by DRAM (local + remote): the L3-miss traffic."""
        return self.local_mem_bytes + self.remote_mem_bytes

    @property
    def total_bytes(self) -> int:
        return self.l2_bytes + self.l3_bytes + self.miss_bytes


class _LRUSet:
    """An LRU set of regions bounded by a byte capacity.

    ``holders`` is a shared map ``id(region) -> set of set-indices`` kept in
    sync on insert/evict so writers can invalidate peer copies without
    scanning every cache in the machine.
    """

    __slots__ = ("capacity", "occupancy", "_entries", "_holders", "_index")

    def __init__(self, capacity: int, holders: Dict[int, set], index: int) -> None:
        self.capacity = int(capacity)
        self.occupancy = 0
        self._entries: "OrderedDict[int, Region]" = OrderedDict()
        self._holders = holders
        self._index = index

    def __contains__(self, region: Region) -> bool:
        return id(region) in self._entries

    def touch(self, region: Region) -> None:
        self._entries.move_to_end(id(region))

    def _note(self, rid: int) -> None:
        holders = self._holders.get(rid)
        if holders is None:
            holders = self._holders[rid] = set()
        holders.add(self._index)

    def _unnote(self, rid: int) -> None:
        holders = self._holders.get(rid)
        if holders is not None:
            holders.discard(self._index)

    def insert(self, region: Region) -> List[Region]:
        """Insert ``region``; return the regions evicted to make room.

        A region larger than the whole set is *not* cached (it streams).
        """
        if region.nbytes > self.capacity:
            return []
        rid = id(region)
        if rid in self._entries:
            self._entries.move_to_end(rid)
            return []
        evicted: List[Region] = []
        while self.occupancy + region.nbytes > self.capacity and self._entries:
            vid, victim = self._entries.popitem(last=False)
            self.occupancy -= victim.nbytes
            self._unnote(vid)
            evicted.append(victim)
        self._entries[rid] = region
        if region.streaming:
            # Scan-resistant insertion (adaptive-insertion LLC policy):
            # use-once data enters at the LRU end so it cannot displace the
            # reused working set.
            self._entries.move_to_end(rid, last=False)
        self.occupancy += region.nbytes
        self._note(rid)
        return evicted

    def invalidate(self, region: Region) -> None:
        rid = id(region)
        if rid in self._entries:
            del self._entries[rid]
            self.occupancy -= region.nbytes
            self._unnote(rid)

    def __len__(self) -> int:
        return len(self._entries)


class CacheModel:
    """L2-per-core / L3-per-socket residency tracker with NUMA homing."""

    def __init__(self, machine: MachineSpec, active_sockets: int = 0) -> None:
        self.machine = machine
        #: sockets the current run actually uses; a single-socket run (the
        #: paper pins ≤24-core runs with numactl) allocates interleaved
        #: pages locally, so INTERLEAVED_HOME degrades to "local".
        self.active_sockets = active_sockets or machine.n_sockets
        self._l2_holders: Dict[int, set] = {}
        self._l3_holders: Dict[int, set] = {}
        self._l2 = [
            _LRUSet(machine.l2_bytes, self._l2_holders, c) for c in range(machine.n_cores)
        ]
        self._l3 = [
            _LRUSet(machine.l3_bytes, self._l3_holders, s) for s in range(machine.n_sockets)
        ]
        # aggregate counters (bytes) for reporting
        self.stats = CacheAccess()

    def reset(self) -> None:
        self.__init__(self.machine, self.active_sockets)

    def access(self, core: int, task: Task, reuse: float = 1.0) -> CacheAccess:
        """Charge ``task``'s data traffic on ``core`` and update residency.

        Each region is *fetched* once from wherever it currently resides.
        The extra ``reuse - 1`` sweeps of a blocked kernel re-read the
        region from the innermost level that can actually HOLD it: a region
        larger than the L2 streams from the L3 on every sweep, and one
        larger than the L3 streams from DRAM on every sweep.
        """
        socket = self.machine.socket_of(core)
        l2 = self._l2[core]
        l3 = self._l3[socket]
        acc = CacheAccess()
        for region in task.regions():
            fetch = region.nbytes
            re_read = int(region.nbytes * max(0.0, reuse - 1.0))
            # Level the repeated sweeps are served from (capacity-limited).
            if region.nbytes <= l2.capacity:
                re_level = "l2"
            elif region.nbytes <= l3.capacity:
                re_level = "l3"
            else:
                re_level = "mem"
            if region in l2:
                l2.touch(region)
                if region in l3:
                    l3.touch(region)
                acc.l2_bytes += fetch
            elif region in l3:
                l3.touch(region)
                acc.l3_bytes += fetch
                l2.insert(region)
            else:
                if region.home is None:
                    region.home = socket  # first touch homes the page
                if region.home == INTERLEAVED_HOME:
                    if self.active_sockets <= 1:
                        acc.local_mem_bytes += fetch
                    else:
                        acc.local_mem_bytes += fetch // 2
                        acc.remote_mem_bytes += fetch - fetch // 2
                elif region.home == socket:
                    acc.local_mem_bytes += fetch
                else:
                    acc.remote_mem_bytes += fetch
                l3.insert(region)
                l2.insert(region)
            if re_read:
                if re_level == "l2":
                    acc.l2_bytes += re_read
                elif re_level == "l3":
                    acc.l3_bytes += re_read
                elif region.home == INTERLEAVED_HOME:
                    if self.active_sockets <= 1:
                        acc.local_mem_bytes += re_read
                    else:
                        acc.local_mem_bytes += re_read // 2
                        acc.remote_mem_bytes += re_read - re_read // 2
                elif region.home == socket or region.home is None:
                    acc.local_mem_bytes += re_read
                else:
                    acc.remote_mem_bytes += re_read
        for w in task.writes():
            # A write installs the region in this core's caches and
            # invalidates any other core's private copy (MESI-style).
            rid = id(w)
            l2_holders = self._l2_holders.get(rid)
            if l2_holders:
                for other_core in list(l2_holders):
                    if other_core != core:
                        self._l2[other_core].invalidate(w)
            l3_holders = self._l3_holders.get(rid)
            if l3_holders:
                for other_socket in list(l3_holders):
                    if other_socket != socket:
                        self._l3[other_socket].invalidate(w)
        self.stats.l2_bytes += acc.l2_bytes
        self.stats.l3_bytes += acc.l3_bytes
        self.stats.local_mem_bytes += acc.local_mem_bytes
        self.stats.remote_mem_bytes += acc.remote_mem_bytes
        return acc

    def hit_rate_l2(self) -> float:
        total = self.stats.total_bytes
        return self.stats.l2_bytes / total if total else 0.0

    def l3_occupancy(self, socket: int) -> int:
        return self._l3[socket].occupancy
