"""IPC and L3-MPKI estimation from simulated traces (Fig. 7).

The paper instruments its real runs with hardware counters and reports the
*fraction of training time* spent in IPC bands and L3-MPKI bands, with and
without locality-aware scheduling.  The simulated executor records per-task
instruction counts and L3-miss traffic, from which we derive the same
time-weighted band histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.runtime.trace import ExecutionTrace, TaskRecord
from repro.simarch.machine import MachineSpec

#: default IPC band edges, matching Fig. 7's x axis
IPC_BANDS: Tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
#: default L3 misses-per-kilo-instruction band edges, matching Fig. 7
MPKI_BANDS: Tuple[float, ...] = (0.0, 1.0, 5.0, 10.0, 20.0, 30.0, 50.0, float("inf"))

CACHE_LINE = 64


def task_ipc(record: TaskRecord, machine: MachineSpec) -> float:
    """Estimated instructions-per-cycle of one task's execution window."""
    if record.duration <= 0:
        return 0.0
    cycles = record.duration * machine.freq_ghz * 1e9
    return record.instructions / cycles if cycles > 0 else 0.0

def task_mpki(record: TaskRecord) -> float:
    """Estimated L3 misses per kilo-instruction of one task."""
    if record.instructions <= 0:
        return 0.0
    misses = record.l3_miss_bytes / CACHE_LINE
    return misses / (record.instructions / 1000.0)


def _band_index(value: float, edges: Sequence[float]) -> int:
    for i in range(len(edges) - 1):
        if edges[i] <= value < edges[i + 1]:
            return i
    return len(edges) - 2


@dataclass
class BandHistogram:
    """Time-weighted histogram: fraction of execution time per value band."""

    edges: Tuple[float, ...]
    fractions: List[float]

    def band_label(self, i: int) -> str:
        hi = self.edges[i + 1]
        hi_s = "inf" if hi == float("inf") else f"{hi:g}"
        return f"[{self.edges[i]:g},{hi_s})"

    def fraction_in(self, lo: float, hi: float) -> float:
        """Total time fraction of bands whose range lies within [lo, hi)."""
        total = 0.0
        for i, frac in enumerate(self.fractions):
            if self.edges[i] >= lo and self.edges[i + 1] <= hi:
                total += frac
        return total

    def rows(self) -> List[Tuple[str, float]]:
        return [(self.band_label(i), f) for i, f in enumerate(self.fractions)]


def ipc_histogram(
    trace: ExecutionTrace, machine: MachineSpec, edges: Sequence[float] = IPC_BANDS
) -> BandHistogram:
    """Fraction of busy execution time spent in each IPC band."""
    return _weighted_histogram(
        trace, edges, lambda r: task_ipc(r, machine)
    )


def mpki_histogram(
    trace: ExecutionTrace, edges: Sequence[float] = MPKI_BANDS
) -> BandHistogram:
    """Fraction of busy execution time spent in each L3-MPKI band."""
    return _weighted_histogram(trace, edges, task_mpki)


def _weighted_histogram(trace, edges, value_fn) -> BandHistogram:
    edges = tuple(edges)
    fractions = [0.0] * (len(edges) - 1)
    total = 0.0
    for record in trace.records:
        if record.duration <= 0:
            continue
        fractions[_band_index(value_fn(record), edges)] += record.duration
        total += record.duration
    if total > 0:
        fractions = [f / total for f in fractions]
    return BandHistogram(edges=edges, fractions=fractions)


def average_ipc(trace: ExecutionTrace, machine: MachineSpec) -> float:
    """Time-weighted mean IPC over the trace."""
    num = sum(r.instructions for r in trace.records)
    den = sum(r.duration for r in trace.records) * machine.freq_ghz * 1e9
    return num / den if den > 0 else 0.0


def average_mpki(trace: ExecutionTrace) -> float:
    """Aggregate L3 misses per kilo-instruction over the trace."""
    misses = sum(r.l3_miss_bytes for r in trace.records) / CACHE_LINE
    instr = sum(r.instructions for r in trace.records)
    return misses / (instr / 1000.0) if instr > 0 else 0.0
