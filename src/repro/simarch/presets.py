"""Calibrated machine presets for the paper's experimental platforms.

Constants are calibrated so the *relative* results (who wins, by what
factor, where crossovers fall) of Tables III/IV and Figs. 3-8 match the
paper; absolute milliseconds are approximate by construction (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simarch.machine import MachineSpec

KIB = 1024
MIB = 1024 * KIB


def xeon_8160_2s() -> MachineSpec:
    """Dual-socket Intel Xeon Platinum 8160 (2 × 24 cores @ 2.1 GHz).

    Cache sizes follow Table I / §IV-A: 1 MiB private L2 per core, 33 MiB
    shared L3 per socket.  Throughput/bandwidth figures are sustained
    effective rates for MKL-sequential float32 kernels.
    """
    return MachineSpec(
        name="xeon-8160-2s",
        n_sockets=2,
        cores_per_socket=24,
        freq_ghz=2.1,
        gemm_gflops=48.0,
        elementwise_gflops=4.0,
        l2_bytes=1 * MIB,
        l3_bytes=33 * MIB,
        l3_bw_gbps=60.0,
        mem_bw_gbps=100.0,
        numa_factor=3.0,
        task_overhead_s=25e-6,
        instr_per_flop=0.083,
        core_mem_bw_gbps=16.0,
    )


def laptop_sim(n_cores: int = 8) -> MachineSpec:
    """A small single-socket machine for fast tests and examples."""
    return MachineSpec(
        name=f"laptop-{n_cores}c",
        n_sockets=1,
        cores_per_socket=n_cores,
        freq_ghz=3.0,
        gemm_gflops=20.0,
        elementwise_gflops=3.0,
        l2_bytes=512 * KIB,
        l3_bytes=16 * MIB,
        l3_bw_gbps=30.0,
        mem_bw_gbps=40.0,
        numa_factor=1.0,
        task_overhead_s=50e-6,
        instr_per_flop=0.105,
    )


@dataclass(frozen=True)
class GPUSpec:
    """Closed-form GPU cost-model parameters (Tesla V100-class).

    The GPU baselines of Tables III/IV are modelled analytically
    (:mod:`repro.baselines.gpu_like`): an RNN timestep is a fused-gate GEMM
    kernel whose efficiency grows with the GEMM's arithmetic size, plus a
    fixed per-kernel launch/framework latency that dominates at batch 1 —
    which is exactly why the paper's CPU runs win at seq ≤ 10 / batch 1 and
    lose at seq 100 / batch 256.
    """

    name: str
    peak_gflops: float
    #: per-kernel fixed cost (launch + framework glue), seconds
    kernel_latency_s: float
    #: per-batch fixed cost (host/device transfer + graph setup), seconds
    batch_overhead_s: float
    #: GEMM size (flops) at which efficiency reaches half its asymptote
    half_efficiency_flops: float
    #: asymptotic fraction of peak reached by large RNN GEMMs
    max_efficiency: float
    #: efficiency floor — tiny kernels are latency-bound, not curve-bound
    min_efficiency: float = 0.005

    def gemm_time(self, flops: float) -> float:
        """Time of one GEMM kernel of ``flops`` floating-point operations."""
        if flops <= 0:
            return self.kernel_latency_s
        eff = self.max_efficiency * flops / (flops + self.half_efficiency_flops)
        eff = max(eff, self.min_efficiency)
        return self.kernel_latency_s + flops / (self.peak_gflops * 1e9 * eff)


def tesla_v100() -> GPUSpec:
    """Tesla V100 SXM2 16 GB (15.7 Tflop/s fp32 peak)."""
    return GPUSpec(
        name="tesla-v100",
        peak_gflops=15700.0,
        kernel_latency_s=10e-6,
        batch_overhead_s=4e-3,
        half_efficiency_flops=1.2e9,
        max_efficiency=0.75,
        min_efficiency=0.005,
    )
