"""Synthetic Wikipedia-like character corpus for next-character prediction.

The paper's many-to-many experiments train on a 1.4 G-character Wikipedia
dump.  We synthesise English-like text from an order-2 character Markov
chain seeded with realistic digram statistics, yielding the same
(T, B, vocab) one-hot → (T, B) next-character code path with a learnable,
non-uniform conditional distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: character vocabulary: lowercase letters, space, and basic punctuation
CHAR_VOCAB = "abcdefghijklmnopqrstuvwxyz .,;\n"

#: a small seed text from which digram statistics are estimated; the Markov
#: generator then extrapolates arbitrary volumes with the same statistics
_SEED_TEXT = (
    "the quick brown fox jumps over the lazy dog. recurrent neural networks "
    "process sequences of characters and words, and bidirectional models "
    "combine forward and reverse context to predict the next character.\n"
    "parallel runtimes schedule tasks when their dependencies are satisfied, "
    "which removes barriers between layers and improves multicore scaling.\n"
    "speech recognition, machine translation and handwriting recognition are "
    "classic applications of these models in sequence learning problems.\n"
)


@dataclass(frozen=True)
class WikipediaConfig:
    """Generator parameters."""

    smoothing: float = 0.08  # add-k smoothing of the digram transition table


class SyntheticWikipedia:
    """Order-2 Markov character stream with English-like statistics."""

    def __init__(self, config: WikipediaConfig = WikipediaConfig(), seed: int = 0):
        self.config = config
        self.seed = seed
        self.vocab = CHAR_VOCAB
        self.char_to_id = {c: i for i, c in enumerate(CHAR_VOCAB)}
        v = len(CHAR_VOCAB)
        counts = np.full((v, v, v), config.smoothing, dtype=np.float64)
        ids = [self.char_to_id[c] for c in _SEED_TEXT.lower() if c in self.char_to_id]
        for a, b, c in zip(ids, ids[1:], ids[2:]):
            counts[a, b, c] += 1.0
        self._transitions = counts / counts.sum(axis=2, keepdims=True)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def sample_text(self, length: int, seed: int = 1) -> np.ndarray:
        """``length`` character ids drawn from the Markov chain."""
        rng = np.random.default_rng((self.seed, seed))
        v = self.vocab_size
        out = np.empty(length, dtype=np.int64)
        a, b = rng.integers(0, v), rng.integers(0, v)
        for i in range(length):
            c = rng.choice(v, p=self._transitions[a, b])
            out[i] = c
            a, b = b, c
        return out

    def decode(self, ids: np.ndarray) -> str:
        return "".join(self.vocab[i] for i in ids)

    def batch(
        self, batch: int, seq_len: int, seed: int = 1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One next-character batch.

        Returns one-hot inputs ``x (seq_len, batch, vocab)`` and targets
        ``y (seq_len, batch)`` where ``y[t] = id of char t+1``.
        """
        ids = self.sample_text(batch * (seq_len + 1), seed=seed).reshape(
            batch, seq_len + 1
        )
        x = np.zeros((seq_len, batch, self.vocab_size), dtype=np.float32)
        t_idx = np.repeat(np.arange(seq_len), batch)
        b_idx = np.tile(np.arange(batch), seq_len)
        x[t_idx, b_idx, ids[b_idx, t_idx]] = 1.0
        y = ids[:, 1:].T.copy()  # (seq_len, batch)
        return x, y
