"""Dataset substrates.

The paper evaluates on the TIDIGITS speech corpus (license-gated) and a
1.4 G-character Wikipedia dump (impractical offline); we substitute
synthetic generators that exercise identical code paths — variable-length
MFCC-like frame sequences for many-to-one classification, and a character
stream for many-to-many next-character prediction (DESIGN.md §2).
"""

from repro.data.tidigits import SyntheticTidigits, TidigitsConfig
from repro.data.wikipedia import SyntheticWikipedia, WikipediaConfig, CHAR_VOCAB
from repro.data.batching import bucket_by_length, iterate_batches, pad_sequences

__all__ = [
    "SyntheticTidigits",
    "TidigitsConfig",
    "SyntheticWikipedia",
    "WikipediaConfig",
    "CHAR_VOCAB",
    "pad_sequences",
    "bucket_by_length",
    "iterate_batches",
]
