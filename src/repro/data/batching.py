"""Batching utilities: padding, length bucketing, batch iteration.

§III-B: "For variable sequence length in between batches, B-Par adjusts the
computation graph dynamically on run-time."  These helpers produce batches
of homogeneous (padded) length; the engines rebuild the task graph per
batch, so consecutive batches may have different sequence lengths.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


def pad_sequences(
    sequences: Sequence[np.ndarray], length: int = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-pad variable-length ``(T_i, F)`` sequences to ``(T, B, F)``.

    Returns the padded tensor and the original lengths.
    """
    if not sequences:
        raise ValueError("no sequences to pad")
    lengths = np.asarray([s.shape[0] for s in sequences])
    length = int(lengths.max()) if length is None else length
    batch = len(sequences)
    features = sequences[0].shape[1]
    out = np.zeros((length, batch, features), dtype=sequences[0].dtype)
    for i, s in enumerate(sequences):
        t = min(length, s.shape[0])
        out[:t, i, :] = s[:t]
    return out, lengths


def bucket_by_length(
    sequences: Sequence[np.ndarray],
    labels: np.ndarray,
    bucket_width: int = 10,
) -> Dict[int, Tuple[List[np.ndarray], List]]:
    """Group sequences into buckets of similar length.

    Padding waste inside a bucket is at most ``bucket_width - 1`` frames per
    sequence; each bucket becomes one or more homogeneous batches.
    """
    if bucket_width < 1:
        raise ValueError("bucket_width must be >= 1")
    buckets: Dict[int, Tuple[List[np.ndarray], List]] = {}
    for seq, label in zip(sequences, labels):
        key = ((seq.shape[0] + bucket_width - 1) // bucket_width) * bucket_width
        buckets.setdefault(key, ([], []))
        buckets[key][0].append(seq)
        buckets[key][1].append(label)
    return buckets


def iterate_batches(
    sequences: Sequence[np.ndarray],
    labels: np.ndarray,
    batch_size: int,
    bucket_width: int = 10,
    drop_last: bool = False,
    seed: int = 0,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield padded ``(x (T, B, F), labels (B,))`` batches, bucketed by length.

    Batch order and within-bucket order are shuffled deterministically.
    """
    rng = np.random.default_rng(seed)
    buckets = bucket_by_length(sequences, labels, bucket_width)
    pending: List[Tuple[np.ndarray, np.ndarray]] = []
    for key in sorted(buckets):
        seqs, labs = buckets[key]
        order = rng.permutation(len(seqs))
        for start in range(0, len(seqs), batch_size):
            idx = order[start : start + batch_size]
            if len(idx) < batch_size and drop_last:
                continue
            x, _ = pad_sequences([seqs[i] for i in idx], length=key)
            y = np.asarray([labs[i] for i in idx])
            pending.append((x, y))
    for i in rng.permutation(len(pending)):
        yield pending[i]
