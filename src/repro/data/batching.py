"""Batching utilities: padding, length bucketing, batch iteration.

§III-B: "For variable sequence length in between batches, B-Par adjusts the
computation graph dynamically on run-time."  These helpers produce batches
of homogeneous (padded) length; the engines rebuild the task graph per
batch, so consecutive batches may have different sequence lengths.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


def pad_sequences(
    sequences: Sequence[np.ndarray], length: int = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-pad variable-length ``(T_i, F)`` sequences to ``(T, B, F)``.

    Returns the padded tensor and the original lengths.  Every sequence must
    be 2-D with the same feature width, and an explicit ``length`` must cover
    the longest sequence — padding never silently truncates data; crop inputs
    explicitly if that is what you want.
    """
    if not sequences:
        raise ValueError("no sequences to pad")
    for i, s in enumerate(sequences):
        if getattr(s, "ndim", None) != 2:
            raise ValueError(
                f"sequence {i} must be a 2-D (T, F) array, got shape "
                f"{getattr(s, 'shape', None)}; reshape 1-D sequences to (T, 1)"
            )
    features = sequences[0].shape[1]
    for i, s in enumerate(sequences):
        if s.shape[1] != features:
            raise ValueError(
                f"sequence {i} has {s.shape[1]} features, expected {features} "
                f"(all sequences in a batch must share one feature width)"
            )
    lengths = np.asarray([s.shape[0] for s in sequences])
    longest = int(lengths.max())
    if length is None:
        length = longest
    elif length < longest:
        raise ValueError(
            f"length={length} is shorter than the longest sequence ({longest} "
            f"frames); pad_sequences never truncates"
        )
    batch = len(sequences)
    out = np.zeros((length, batch, features), dtype=sequences[0].dtype)
    for i, s in enumerate(sequences):
        out[: s.shape[0], i, :] = s
    return out, lengths


def bucket_by_length(
    sequences: Sequence[np.ndarray],
    labels: np.ndarray,
    bucket_width: int = 10,
) -> Dict[int, Tuple[List[np.ndarray], List]]:
    """Group sequences into buckets of similar length.

    Padding waste inside a bucket is at most ``bucket_width - 1`` frames per
    sequence; each bucket becomes one or more homogeneous batches.
    """
    if bucket_width < 1:
        raise ValueError("bucket_width must be >= 1")
    buckets: Dict[int, Tuple[List[np.ndarray], List]] = {}
    for seq, label in zip(sequences, labels):
        key = ((seq.shape[0] + bucket_width - 1) // bucket_width) * bucket_width
        buckets.setdefault(key, ([], []))
        buckets[key][0].append(seq)
        buckets[key][1].append(label)
    return buckets


def iterate_batches(
    sequences: Sequence[np.ndarray],
    labels: np.ndarray,
    batch_size: int,
    bucket_width: int = 10,
    drop_last: bool = False,
    seed: int = 0,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield padded ``(x (T, B, F), labels (B,))`` batches, bucketed by length.

    Batch order and within-bucket order are shuffled deterministically.
    """
    rng = np.random.default_rng(seed)
    buckets = bucket_by_length(sequences, labels, bucket_width)
    pending: List[Tuple[np.ndarray, np.ndarray]] = []
    for key in sorted(buckets):
        seqs, labs = buckets[key]
        order = rng.permutation(len(seqs))
        for start in range(0, len(seqs), batch_size):
            idx = order[start : start + batch_size]
            if len(idx) < batch_size and drop_last:
                continue
            x, _ = pad_sequences([seqs[i] for i in idx], length=key)
            y = np.asarray([labs[i] for i in idx])
            pending.append((x, y))
    for i in rng.permutation(len(pending)):
        yield pending[i]
