"""Synthetic TIDIGITS-like connected-digit speech corpus.

TIDIGITS (Leonard & Doddington, 1993) contains utterances of connected
digit strings ("oh" + 0-9) used for speaker-independent recognition.  The
corpus is license-gated, so we synthesise an equivalent: each digit has a
characteristic formant template (a fixed pattern over the feature
dimension), an utterance renders its digits as consecutive frame spans with
speaker-dependent amplitude/duration jitter plus noise, and the
many-to-one task is to classify the utterance's *final* digit — exactly
the (T, B, features) → (B,) code path the paper's speech experiments
exercise, with variable sequence lengths across utterances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: digit classes: "oh" plus 0-9 (TIDIGITS vocabulary)
NUM_DIGITS = 11


@dataclass(frozen=True)
class TidigitsConfig:
    """Shape and noise parameters of the synthetic corpus."""

    num_features: int = 39  # MFCC-like: 13 coefficients + deltas + delta-deltas
    min_digits: int = 1
    max_digits: int = 7
    frames_per_digit_min: int = 8
    frames_per_digit_max: int = 14
    noise_std: float = 0.35
    speaker_jitter: float = 0.15


class SyntheticTidigits:
    """Deterministic synthetic connected-digit utterance generator."""

    def __init__(self, config: TidigitsConfig = TidigitsConfig(), seed: int = 0):
        self.config = config
        self.seed = seed
        rng = np.random.default_rng(seed)
        # One formant-like template per digit: smooth bumps over the feature
        # axis at digit-specific positions.
        feat = np.arange(config.num_features, dtype=np.float64)
        templates = []
        for digit in range(NUM_DIGITS):
            centers = rng.uniform(0, config.num_features, size=3)
            widths = rng.uniform(2.0, 6.0, size=3)
            heights = rng.uniform(0.8, 1.6, size=3) * (1 + 0.1 * digit)
            tpl = sum(
                h * np.exp(-0.5 * ((feat - c) / w) ** 2)
                for c, w, h in zip(centers, widths, heights)
            )
            templates.append(tpl)
        self._templates = np.asarray(templates, dtype=np.float32)

    @property
    def num_classes(self) -> int:
        return NUM_DIGITS

    @property
    def num_features(self) -> int:
        return self.config.num_features

    def utterance(self, rng: np.random.Generator) -> Tuple[np.ndarray, int]:
        """One utterance: frames ``(T, num_features)`` and its label.

        The label is the final digit spoken, so the classifier benefits from
        both directions: the reverse RNN sees the informative frames first,
        the forward RNN must carry context across the whole utterance.
        """
        cfg = self.config
        n_digits = int(rng.integers(cfg.min_digits, cfg.max_digits + 1))
        digits = rng.integers(0, NUM_DIGITS, size=n_digits)
        amp = 1.0 + cfg.speaker_jitter * rng.standard_normal()
        spans = []
        for digit in digits:
            frames = int(
                rng.integers(cfg.frames_per_digit_min, cfg.frames_per_digit_max + 1)
            )
            # Attack/decay envelope over the digit's frames.
            env = np.hanning(frames + 2)[1:-1].astype(np.float32)
            span = amp * env[:, None] * self._templates[digit][None, :]
            spans.append(span)
        x = np.concatenate(spans, axis=0)
        x = x + cfg.noise_std * rng.standard_normal(x.shape).astype(np.float32)
        return x.astype(np.float32), int(digits[-1])

    def generate(self, n: int, seed: int = 1) -> Tuple[List[np.ndarray], np.ndarray]:
        """``n`` utterances (variable length) and their labels."""
        rng = np.random.default_rng((self.seed, seed))
        xs, ys = [], []
        for _ in range(n):
            x, y = self.utterance(rng)
            xs.append(x)
            ys.append(y)
        return xs, np.asarray(ys, dtype=np.int64)

    def fixed_length_batch(
        self, batch: int, seq_len: int, seed: int = 1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A padded/cropped ``(seq_len, batch, features)`` batch + labels.

        Convenience for the performance experiments, which use fixed
        sequence lengths (the paper's Seq Len column).
        """
        xs, ys = self.generate(batch, seed=seed)
        out = np.zeros((seq_len, batch, self.config.num_features), dtype=np.float32)
        for i, x in enumerate(xs):
            t = min(seq_len, x.shape[0])
            out[:t, i, :] = x[:t]
        return out, ys
