#!/usr/bin/env python
"""Validate a serving JSON report against the expected schema.

Used by the CI smoke target (``make smoke-serving``): a schema regression
in ``python -m repro serve-bench`` / ``benchmarks/bench_serving.py`` fails
the build even when the run itself succeeds.  Accepts either a CLI report
(``{"config": ..., "results": ...}``) or a bench sweep report
(``{"sweep": {"<batch size>": <results>, ...}, "speedup": ...}``).

    python tools/check_serving_report.py report.json
"""

from __future__ import annotations

import sys

from _reportlib import check_schema, finish, load_report, lookup

#: (dotted path, type) pairs every results block must provide
RESULTS_SCHEMA = [
    ("requests.total", int),
    ("requests.completed", int),
    ("requests.shed", int),
    ("requests.shed_reasons", dict),
    ("throughput_rps", (int, float)),
    ("elapsed_s", (int, float)),
    ("latency_s.p50", (int, float)),
    ("latency_s.p95", (int, float)),
    ("latency_s.p99", (int, float)),
    ("latency_s.mean", (int, float)),
    ("batches.count", int),
    ("batches.mean_size", (int, float)),
    ("batches.size_histogram", dict),
    ("batches.padding_overhead", (int, float)),
    ("queue_depth.mean", (int, float)),
    ("queue_depth.max", (int, float)),
]


def check_results(results, label, errors):
    check_schema(results, RESULTS_SCHEMA, label, errors)
    try:
        if lookup(results, "throughput_rps") <= 0:
            errors.append(f"{label}: throughput_rps must be positive")
        ordered = [lookup(results, f"latency_s.p{p}") for p in (50, 95, 99)]
        if not ordered[0] <= ordered[1] <= ordered[2]:
            errors.append(f"{label}: latency percentiles out of order {ordered}")
        counted = sum(lookup(results, f"requests.{k}")
                      for k in ("completed", "shed"))
        if counted != lookup(results, "requests.total"):
            errors.append(f"{label}: request accounting does not add up")
        by_reason = sum(lookup(results, "requests.shed_reasons").values())
        if by_reason != lookup(results, "requests.shed"):
            errors.append(f"{label}: shed_reasons does not sum to shed")
    except KeyError:
        pass  # already reported above


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    report = load_report(argv[1])

    errors: list = []
    if "results" in report:
        check_results(report["results"], "results", errors)
    elif "sweep" in report:
        if not report["sweep"]:
            errors.append("sweep: empty")
        for key, results in report["sweep"].items():
            check_results(results, f"sweep[{key}]", errors)
        if not isinstance(report.get("speedup"), (int, float)):
            errors.append("missing/invalid speedup")
    else:
        errors.append("report has neither a 'results' nor a 'sweep' block")

    return finish(errors, [f"{argv[1]}: serving report schema OK"])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
