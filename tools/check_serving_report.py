#!/usr/bin/env python
"""Validate a serving JSON report against the expected schema.

Used by the CI smoke target (``make smoke-serving``): a schema regression
in ``python -m repro serve-bench`` / ``benchmarks/bench_serving.py`` fails
the build even when the run itself succeeds.  Accepts either a CLI report
(``{"config": ..., "results": ...}``) or a bench sweep report
(``{"sweep": {"<batch size>": <results>, ...}, "speedup": ...}``).

    python tools/check_serving_report.py report.json
"""

from __future__ import annotations

import json
import sys

#: (dotted path, type) pairs every results block must provide
RESULTS_SCHEMA = [
    ("requests.total", int),
    ("requests.completed", int),
    ("requests.shed", int),
    ("requests.expired", int),
    ("throughput_rps", (int, float)),
    ("elapsed_s", (int, float)),
    ("latency_s.p50", (int, float)),
    ("latency_s.p95", (int, float)),
    ("latency_s.p99", (int, float)),
    ("latency_s.mean", (int, float)),
    ("batches.count", int),
    ("batches.mean_size", (int, float)),
    ("batches.size_histogram", dict),
    ("batches.padding_overhead", (int, float)),
    ("queue_depth.mean", (int, float)),
    ("queue_depth.max", (int, float)),
]


def lookup(obj, dotted):
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            raise KeyError(dotted)
        obj = obj[part]
    return obj


def check_results(results, label, errors):
    for path, typ in RESULTS_SCHEMA:
        try:
            value = lookup(results, path)
        except KeyError:
            errors.append(f"{label}: missing key {path!r}")
            continue
        if isinstance(value, bool) or not isinstance(value, typ):
            errors.append(f"{label}: {path!r} has type {type(value).__name__}")
    try:
        if lookup(results, "throughput_rps") <= 0:
            errors.append(f"{label}: throughput_rps must be positive")
        ordered = [lookup(results, f"latency_s.p{p}") for p in (50, 95, 99)]
        if not ordered[0] <= ordered[1] <= ordered[2]:
            errors.append(f"{label}: latency percentiles out of order {ordered}")
        counted = sum(lookup(results, f"requests.{k}")
                      for k in ("completed", "shed", "expired"))
        if counted != lookup(results, "requests.total"):
            errors.append(f"{label}: request accounting does not add up")
    except KeyError:
        pass  # already reported above


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1]) as fh:
        report = json.load(fh)

    errors: list = []
    if "results" in report:
        check_results(report["results"], "results", errors)
    elif "sweep" in report:
        if not report["sweep"]:
            errors.append("sweep: empty")
        for key, results in report["sweep"].items():
            check_results(results, f"sweep[{key}]", errors)
        if not isinstance(report.get("speedup"), (int, float)):
            errors.append("missing/invalid speedup")
    else:
        errors.append("report has neither a 'results' nor a 'sweep' block")

    if errors:
        for err in errors:
            print(f"SCHEMA ERROR: {err}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: serving report schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
