#!/usr/bin/env python
"""Validate a ``BENCH_*.json`` benchmark record against its schema.

Used by the CI smoke target (``make smoke-fused``): a schema regression in
the machine-readable bench records (``benchmarks/baselines/BENCH_*.json``,
emitted by ``benchmarks/bench_fused_projection.py``,
``benchmarks/bench_threaded_real.py`` and ``python -m repro fused-bench``)
fails the build even when the run itself succeeds.  The ``bench`` field
selects the per-bench results schema.

    python tools/check_bench_report.py BENCH_fused_projection.json [...]
"""

from __future__ import annotations

import json
import sys

#: (dotted path, type) pairs every timing summary block provides
TIMING_SCHEMA = [
    ("median_s", (int, float)),
    ("p95_s", (int, float)),
    ("mean_s", (int, float)),
    ("min_s", (int, float)),
    ("n", int),
]

#: per-bench results schema, keyed by the record's ``bench`` field
RESULTS_SCHEMA = {
    "fused_projection": [
        ("threaded.off", dict),
        ("threaded.on", dict),
        ("threaded.speedup_median.on", (int, float)),
        ("threaded.speedup_median.auto", (int, float)),
        ("sim.off.batch_s", (int, float)),
        ("sim.on.batch_s", (int, float)),
        ("sim.off.critical_path_flops", (int, float)),
        ("sim.on.critical_path_flops", (int, float)),
        ("sim.critical_path_reduction", (int, float)),
        ("sim.sim_speedup", (int, float)),
    ],
    "threaded_real": [
        ("threaded_train_batch", dict),
        ("serial_train_batch", dict),
        ("threaded_inference", dict),
        ("reference_train_batch", dict),
        ("speedup_median.threaded_vs_serial_train", (int, float)),
    ],
}

#: results paths that must hold a timing summary block
TIMING_BLOCKS = {
    "fused_projection": ["threaded.off", "threaded.on", "threaded.auto"],
    "threaded_real": [
        "threaded_train_batch", "serial_train_batch",
        "threaded_inference", "reference_train_batch",
    ],
}


def lookup(obj, dotted):
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            raise KeyError(dotted)
        obj = obj[part]
    return obj


def check_schema(obj, schema, label, errors):
    for path, typ in schema:
        try:
            value = lookup(obj, path)
        except KeyError:
            errors.append(f"{label}: missing key {path!r}")
            continue
        if isinstance(value, bool) or not isinstance(value, typ):
            errors.append(f"{label}: {path!r} has type {type(value).__name__}")


def check_report(report, label, errors):
    bench = report.get("bench")
    if bench not in RESULTS_SCHEMA:
        errors.append(f"{label}: unknown bench {bench!r} "
                      f"(expected one of {sorted(RESULTS_SCHEMA)})")
        return
    if not isinstance(report.get("config"), dict):
        errors.append(f"{label}: missing/invalid 'config' block")
    results = report.get("results")
    if not isinstance(results, dict):
        errors.append(f"{label}: missing/invalid 'results' block")
        return
    check_schema(results, RESULTS_SCHEMA[bench], label, errors)
    for block in TIMING_BLOCKS[bench]:
        try:
            summary = lookup(results, block)
        except KeyError:
            continue  # already reported
        check_schema(summary, TIMING_SCHEMA, f"{label}.{block}", errors)
        try:
            if lookup(summary, "median_s") > lookup(summary, "p95_s"):
                errors.append(f"{label}.{block}: median_s exceeds p95_s")
            if lookup(summary, "median_s") <= 0:
                errors.append(f"{label}.{block}: median_s must be positive")
        except KeyError:
            pass
    if bench == "fused_projection":
        try:
            reduction = lookup(results, "sim.critical_path_reduction")
            # acceptance: the simulated critical path *strictly* decreases
            if not 0.0 < reduction < 1.0:
                errors.append(
                    f"{label}: sim.critical_path_reduction={reduction} "
                    "not strictly inside (0, 1)"
                )
        except KeyError:
            pass


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors: list = []
    for path in argv[1:]:
        with open(path) as fh:
            report = json.load(fh)
        check_report(report, path, errors)
    if errors:
        for err in errors:
            print(f"SCHEMA ERROR: {err}", file=sys.stderr)
        return 1
    for path in argv[1:]:
        print(f"{path}: bench record schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
