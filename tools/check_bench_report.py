#!/usr/bin/env python
"""Validate a ``BENCH_*.json`` benchmark record against its schema.

Used by the CI smoke target (``make smoke-fused``): a schema regression in
the machine-readable bench records (``benchmarks/baselines/BENCH_*.json``,
emitted by ``benchmarks/bench_fused_projection.py``,
``benchmarks/bench_threaded_real.py`` and ``python -m repro fused-bench``)
fails the build even when the run itself succeeds.  The ``bench`` field
selects the per-bench results schema.

    python tools/check_bench_report.py BENCH_fused_projection.json [...]
"""

from __future__ import annotations

import sys

from _reportlib import check_schema, check_timing_block, finish, load_report, lookup

#: per-bench results schema, keyed by the record's ``bench`` field
RESULTS_SCHEMA = {
    "fused_projection": [
        ("threaded.off", dict),
        ("threaded.on", dict),
        ("threaded.speedup_median.on", (int, float)),
        ("threaded.speedup_median.auto", (int, float)),
        ("sim.off.batch_s", (int, float)),
        ("sim.on.batch_s", (int, float)),
        ("sim.off.critical_path_flops", (int, float)),
        ("sim.on.critical_path_flops", (int, float)),
        ("sim.critical_path_reduction", (int, float)),
        ("sim.sim_speedup", (int, float)),
    ],
    "threaded_real": [
        ("threaded_train_batch", dict),
        ("serial_train_batch", dict),
        ("threaded_inference", dict),
        ("reference_train_batch", dict),
        ("speedup_median.threaded_vs_serial_train", (int, float)),
    ],
}

#: results paths that must hold a timing summary block
TIMING_BLOCKS = {
    "fused_projection": ["threaded.off", "threaded.on", "threaded.auto"],
    "threaded_real": [
        "threaded_train_batch", "serial_train_batch",
        "threaded_inference", "reference_train_batch",
    ],
}


def check_report(report, label, errors):
    bench = report.get("bench")
    if bench not in RESULTS_SCHEMA:
        errors.append(f"{label}: unknown bench {bench!r} "
                      f"(expected one of {sorted(RESULTS_SCHEMA)})")
        return
    if not isinstance(report.get("config"), dict):
        errors.append(f"{label}: missing/invalid 'config' block")
    results = report.get("results")
    if not isinstance(results, dict):
        errors.append(f"{label}: missing/invalid 'results' block")
        return
    check_schema(results, RESULTS_SCHEMA[bench], label, errors)
    for block in TIMING_BLOCKS[bench]:
        try:
            summary = lookup(results, block)
        except KeyError:
            continue  # already reported
        check_timing_block(summary, f"{label}.{block}", errors)
    if bench == "fused_projection":
        try:
            reduction = lookup(results, "sim.critical_path_reduction")
            # acceptance: the simulated critical path *strictly* decreases
            if not 0.0 < reduction < 1.0:
                errors.append(
                    f"{label}: sim.critical_path_reduction={reduction} "
                    "not strictly inside (0, 1)"
                )
        except KeyError:
            pass


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors: list = []
    for path in argv[1:]:
        check_report(load_report(path), path, errors)
    return finish(errors, [f"{path}: bench record schema OK" for path in argv[1:]])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
