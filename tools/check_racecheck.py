#!/usr/bin/env python
"""CI gate for the race detector: clean pass + mutation kill + fuzz.

Fails the build (exit 1) when any of the following breaks:

1. **Clean graph**: a BLSTM train-step graph (fused and unfused) passes
   the full dynamic check — zero undeclared accesses, zero unordered
   conflicting pairs.
2. **Mutation kill**: dropping one random *order-defining* declared
   dependence (seeded, ``--mutations`` trials) is flagged by the ordering
   audit every time.  A silent detector means the race checker itself has
   rotted — this is the self-test that keeps it honest.
3. **Fuzz determinism**: ``--fuzz-seeds`` fuzzed schedules reproduce the
   FIFO reference's parameters and gradients bitwise.

Usage::

    PYTHONPATH=src python tools/check_racecheck.py [--mutations 5] [--fuzz-seeds 5]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.graph_builder import build_brnn_graph
from repro.models.params import BRNNParams
from repro.models.spec import BRNNSpec
from repro.runtime.racecheck import (
    check_build,
    fuzz_equivalence_sweep,
    mutation_probe,
)


def _spec() -> BRNNSpec:
    return BRNNSpec(
        cell="lstm",
        input_size=6,
        hidden_size=8,
        num_layers=2,
        merge_mode="sum",
        head="many_to_one",
        num_classes=4,
    )


def _make_build(fused: str = "off", proj_block=None):
    spec = _spec()
    rng = np.random.default_rng(0)
    x = rng.standard_normal((5, 8, spec.input_size)).astype(spec.dtype)
    labels = rng.integers(0, spec.num_classes, size=8)

    def build():
        params = BRNNParams.initialize(spec, seed=1)
        return build_brnn_graph(
            spec,
            x=x,
            labels=labels,
            params=params,
            training=True,
            mbs=2,
            lr=0.05,
            fused_input_projection=fused,
            proj_block=proj_block,
        )

    return build


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mutations", type=int, default=5,
                        help="seeded dependence-deletion trials per graph")
    parser.add_argument("--fuzz-seeds", type=int, default=5,
                        help="fuzzed schedules compared bitwise against FIFO")
    args = parser.parse_args(argv)

    failures = []

    for label, build in (
        ("unfused", _make_build("off")),
        ("fused", _make_build("on", proj_block=2)),
    ):
        report = check_build(build())
        print(f"[{label}] {report.summary()}")
        for f in report.findings:
            print("   " + f.describe())
        if not report.ok:
            failures.append(f"{label}: clean graph produced findings")

        graph = build().graph
        for seed in range(args.mutations):
            probe = mutation_probe(graph, seed=seed)
            status = "detected" if probe["detected"] else "MISSED"
            print(f"[{label}] mutation seed {seed}: dropped "
                  f"{probe['edge_names'][0]} -> {probe['edge_names'][1]} "
                  f"(region {probe['region']}) ... {status}")
            if not probe["detected"]:
                failures.append(
                    f"{label}: deleted dependence {probe['edge_names']} not detected"
                )

    if args.fuzz_seeds:
        sweep = fuzz_equivalence_sweep(
            _make_build("off"), range(args.fuzz_seeds), n_workers=2
        )
        print(sweep.summary())
        if not sweep.ok:
            failures.append("fuzzed schedules diverged from the FIFO reference")

    if failures:
        print("\nFAILED:")
        for f in failures:
            print("  - " + f)
        return 1
    print("\nOK: declarations complete, mutations detected, schedules deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
