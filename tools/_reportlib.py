"""Shared plumbing for the ``tools/check_*.py`` report gates.

Every gate follows the same contract: load one or more JSON reports,
validate dotted-path/type schemas, print ``SCHEMA ERROR:`` lines to
stderr, and exit 0 (clean) / 1 (schema errors) / 2 (usage).  This module
holds the shared pieces so the per-gate scripts only declare their
schemas and invariants.

Standalone by design: the gates must run without ``PYTHONPATH=src`` so a
broken repro package cannot take the report *checkers* down with it.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Sequence, Tuple

#: must match repro.harness.bench_json.SCHEMA_VERSION (kept literal so the
#: gate works without importing the package it is gating)
SCHEMA_VERSION = 1

#: (dotted path, type) pairs every timing summary block provides
TIMING_SCHEMA = [
    ("median_s", (int, float)),
    ("p95_s", (int, float)),
    ("mean_s", (int, float)),
    ("min_s", (int, float)),
    ("n", int),
]


def lookup(obj, dotted: str):
    """Resolve ``a.b.c`` through nested dicts; KeyError names the path."""
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            raise KeyError(dotted)
        obj = obj[part]
    return obj


def check_schema(obj, schema: Sequence[Tuple[str, type]], label: str, errors: List[str]) -> None:
    """Append an error per missing/mistyped dotted path in ``schema``.

    ``bool`` is not accepted where a number is expected (it is an ``int``
    subclass), but schemas may demand ``bool`` explicitly.
    """
    for path, typ in schema:
        try:
            value = lookup(obj, path)
        except KeyError:
            errors.append(f"{label}: missing key {path!r}")
            continue
        wants_bool = typ is bool or (isinstance(typ, tuple) and bool in typ)
        if not wants_bool and isinstance(value, bool):
            errors.append(f"{label}: {path!r} has type bool")
        elif not isinstance(value, typ):
            errors.append(f"{label}: {path!r} has type {type(value).__name__}")


def check_timing_block(summary, label: str, errors: List[str]) -> None:
    """Validate one ``summarize_times`` block plus its sanity invariants."""
    check_schema(summary, TIMING_SCHEMA, label, errors)
    try:
        if lookup(summary, "median_s") > lookup(summary, "p95_s"):
            errors.append(f"{label}: median_s exceeds p95_s")
        if lookup(summary, "median_s") <= 0:
            errors.append(f"{label}: median_s must be positive")
    except KeyError:
        pass  # already reported


def check_envelope(report, label: str, errors: List[str], bench: str = None) -> None:
    """Validate the BENCH_*.json envelope (bench/schema_version/config/results)."""
    if not isinstance(report, dict):
        errors.append(f"{label}: report is not a JSON object")
        return
    for key in ("bench", "schema_version", "config", "results"):
        if key not in report:
            errors.append(f"{label}: missing top-level key {key!r}")
    if report.get("schema_version", SCHEMA_VERSION) != SCHEMA_VERSION:
        errors.append(
            f"{label}: schema_version {report.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if bench is not None and report.get("bench") != bench:
        errors.append(f"{label}: bench {report.get('bench')!r} (expected {bench!r})")


def load_report(path: str):
    with open(path) as fh:
        return json.load(fh)


def finish(errors: List[str], ok_lines: Sequence[str]) -> int:
    """Common exit protocol: stderr errors → 1, else print OKs → 0."""
    if errors:
        for err in errors:
            print(f"SCHEMA ERROR: {err}", file=sys.stderr)
        return 1
    for line in ok_lines:
        print(line)
    return 0
