#!/usr/bin/env python
"""Gate a ``BENCH_graph_analysis.json`` static-analysis report.

Used by the CI smoke target (``make smoke-analysis``).  Beyond schema
shape, this gate enforces the analysis *outcomes*:

* zero graphlint findings — the declared graph is structurally sound;
* zero over-declaration findings — no spurious ``inout`` serialisation;
* the serialization-debt budget: declared span may exceed the pure
  dataflow span by at most ``--debt-budget`` (default 1.01, i.e. the
  barrier-free builder must declare essentially *only* the orderings the
  values require — a regression here means a graph-builder change
  traded away parallelism silently);
* when the report includes an AST-lint block, zero pylint findings.

    python tools/check_analysis.py BENCH_graph_analysis.json [...]
    python tools/check_analysis.py --debt-budget 1.25 smoke.json
"""

from __future__ import annotations

import sys

from _reportlib import check_envelope, check_schema, finish, load_report, lookup

DEFAULT_DEBT_BUDGET = 1.01

RESULTS_SCHEMA = [
    ("graphlint.ok", bool),
    ("graphlint.n_tasks", int),
    ("graphlint.n_edges", int),
    ("graphlint.n_regions", int),
    ("graphlint.findings", list),
    ("parallelism.ok", bool),
    ("parallelism.findings", list),
    ("parallelism.metrics.n_tasks", (int, float)),
    ("parallelism.metrics.n_edges", (int, float)),
    ("parallelism.metrics.n_redundant_edges", (int, float)),
    ("parallelism.metrics.redundant_edge_fraction", (int, float)),
    ("parallelism.metrics.width", (int, float)),
    ("parallelism.metrics.span_tasks", (int, float)),
    ("parallelism.metrics.span_flops", (int, float)),
    ("parallelism.metrics.total_flops", (int, float)),
    ("parallelism.metrics.avg_parallelism", (int, float)),
    ("parallelism.metrics.dataflow_span_tasks", (int, float)),
    ("parallelism.metrics.serialization_debt", (int, float)),
]


def check_report(report, label, errors, debt_budget):
    check_envelope(report, label, errors, bench="graph_analysis")
    results = report.get("results")
    if not isinstance(results, dict):
        errors.append(f"{label}: missing/invalid 'results' block")
        return
    check_schema(results, RESULTS_SCHEMA, label, errors)
    try:
        for half in ("graphlint", "parallelism"):
            findings = lookup(results, f"{half}.findings")
            if findings:
                first = findings[0]
                errors.append(
                    f"{label}: {half} reported {len(findings)} finding(s), "
                    f"first: [{first.get('rule')}] {first.get('task')} "
                    f"region {first.get('region')}"
                )
        debt = lookup(results, "parallelism.metrics.serialization_debt")
        if debt > debt_budget:
            errors.append(
                f"{label}: serialization_debt {debt:.4f} exceeds budget "
                f"{debt_budget} — the declared graph serialises beyond its "
                "dataflow (spurious dependences?)"
            )
        if lookup(results, "parallelism.metrics.width") < 1:
            errors.append(f"{label}: parallelism width < 1")
    except KeyError:
        pass  # already reported by check_schema
    if "pylint" in results:
        pylint = results["pylint"]
        check_schema(pylint, [("ok", bool), ("findings", list)], f"{label}.pylint", errors)
        for f in pylint.get("findings", []):
            errors.append(
                f"{label}: pylint [{f.get('rule')}] {f.get('path')}:{f.get('line')} "
                f"{f.get('message')}"
            )


def main(argv) -> int:
    args = list(argv[1:])
    debt_budget = DEFAULT_DEBT_BUDGET
    if "--debt-budget" in args:
        i = args.index("--debt-budget")
        try:
            debt_budget = float(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__)
            return 2
        del args[i:i + 2]
    if not args:
        print(__doc__)
        return 2
    errors: list = []
    for path in args:
        check_report(load_report(path), path, errors, debt_budget)
    return finish(errors, [f"{path}: graph-analysis report OK" for path in args])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
