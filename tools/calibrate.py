"""Calibration probe: compare simulated engines against paper table rows.

Usage: python tools/calibrate.py [quick|full|probe]
"""

import sys

import numpy as np

from repro.models import BRNNSpec
from repro.harness import simulated_batch_time
from repro.baselines import KerasCPUEngine, PyTorchCPUEngine


def mk(i, h, cell="lstm"):
    return BRNNSpec(
        cell=cell, input_size=i, hidden_size=h, num_layers=6,
        merge_mode="sum", head="many_to_one", num_classes=11,
    )


def row(spec, T, B, paper):
    mbs = min(8, B)
    bp = simulated_batch_time(spec, T, B, mbs=mbs, n_cores=48).seconds
    bs = simulated_batch_time(spec, T, B, mbs=mbs, n_cores=48, serialize_chunks=True).seconds
    k, _ = KerasCPUEngine(spec).batch_time(T, B, 48)
    p, _ = PyTorchCPUEngine(spec).batch_time(T, B, 48)
    print(
        "%4d/%4d/%3d/%3d  K %8.0f (%8.0f)  P %8.0f (%8.0f)  BSeq %8.0f (%8.0f)"
        "  BPar %8.0f (%8.0f)  K/BP %.2f (%.2f) P/BP %.2f (%.2f)"
        % (
            spec.input_size, spec.hidden_size, B, T,
            k * 1e3, paper[0], p * 1e3, paper[1], bs * 1e3, paper[2],
            bp * 1e3, paper[3], k / bp, paper[0] / paper[3], p / bp, paper[1] / paper[3],
        )
    )


def probe(spec, T, B, mbs):
    t = simulated_batch_time(spec, T, B, mbs=mbs, n_cores=48)
    tr = t.trace
    recs = tr.records
    t_fwd_end = max(r.end for r in recs if r.kind == "cell")
    fwd = [r for r in recs if r.end <= t_fwd_end and r.kind in ("cell", "merge")]
    print(
        "makespan %.3f  conc avg %.1f peak %d  eff %.2f"
        % (tr.makespan, tr.average_concurrency(), tr.peak_concurrency(), tr.parallel_efficiency())
    )
    cs = tr.cache_stats
    print(
        "traffic GB: l2 %.1f l3 %.1f local %.2f remote %.2f"
        % (cs.l2_bytes / 1e9, cs.l3_bytes / 1e9, cs.local_mem_bytes / 1e9, cs.remote_mem_bytes / 1e9)
    )
    cells = [r for r in recs if r.kind == "cell"]
    bwds = [r for r in recs if r.kind == "cell_bwd"]
    print(
        "cell fwd mean %.2f ms (n=%d)  bwd mean %.2f ms (n=%d)"
        % (np.mean([r.duration for r in cells]) * 1e3, len(cells),
           np.mean([r.duration for r in bwds]) * 1e3, len(bwds))
    )
    # concurrency in fwd window vs bwd window
    prof = tr.concurrency_profile()
    def window_conc(t0, t1):
        area = 0.0
        for (a, n), (b, _) in zip(prof, prof[1:]):
            lo, hi = max(a, t0), min(b, t1)
            if hi > lo:
                area += n * (hi - lo)
        return area / (t1 - t0)
    mid = t_fwd_end
    print("conc fwd-window %.1f, bwd-window %.1f" % (window_conc(0, mid), window_conc(mid, tr.makespan)))


if __name__ == "__main__":
    mode = sys.argv[1] if len(sys.argv) > 1 else "quick"
    if mode == "probe":
        probe(mk(256, 1024), 100, 256, 8)
        probe(mk(256, 256), 100, 128, 8)
    else:
        row(mk(256, 256), 100, 128, (1770.15, 3956.06, 2419.80, 932.55))
        row(mk(256, 256), 2, 1, (17.47, 20.51, 20.21, 14.94))
        row(mk(256, 256), 10, 1, (37.29, 54.70, 60.76, 24.80))
        row(mk(256, 256), 100, 1, (276.68, 461.45, 439.25, 143.21))
        row(mk(256, 1024), 100, 256, (28571.33, 143332.02, 71715.42, 15640.74))
        if mode == "full":
            row(mk(64, 256), 100, 128, (1770.76, 3215.68, 2364.00, 989.06))
            row(mk(1024, 256), 100, 128, (1816.53, 3663.28, 2726.55, 1149.55))
            row(mk(64, 256), 100, 256, (2751.70, 5240.83, 4262.18, 1566.60))
            row(mk(256, 256), 100, 256, (2770.82, 5412.32, 4352.02, 1581.97))
            row(mk(1024, 256), 100, 256, (2893.43, 5713.00, 4546.46, 1830.35))
            row(mk(64, 1024), 100, 256, (28489.52, 147839.40, 71038.30, 17378.61))
            row(mk(1024, 1024), 100, 256, (28721.38, 117934.39, 71521.05, 16143.40))
