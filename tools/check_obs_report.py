#!/usr/bin/env python
"""Gate a ``BENCH_obs_overhead.json`` observability report.

Used by the CI smoke target (``make smoke-obs``).  Beyond schema shape,
this gate enforces the observability *outcomes*:

* the metrics-overhead budget: the paired-ratio overhead of running the
  threaded engine with a ``MetricsRegistry`` attached may be at most
  ``--budget`` (default 1.02, the ≤2 % claim recorded in the baseline);
* the policy comparison ran both policies on the same graph (identical
  task counts, non-zero pushes/pops) and the locality-aware policy's
  hinted hit rate beats the oblivious baseline's on that graph;
* timing blocks are well-formed ``summarize_times`` summaries.

    python tools/check_obs_report.py BENCH_obs_overhead.json [...]
    python tools/check_obs_report.py --budget 1.05 smoke.json
"""

from __future__ import annotations

import sys

from _reportlib import (
    check_envelope,
    check_schema,
    check_timing_block,
    finish,
    load_report,
    lookup,
)

DEFAULT_BUDGET = 1.02

COUNTER_SCHEMA = [
    ("pushes", int),
    ("pops", int),
    ("hinted_pushes", int),
    ("locality_hits", int),
    ("locality_misses", int),
    ("locality_hit_rate", (int, float)),
    ("steals", int),
    ("starvation_stalls", int),
    ("queue_depth_mean", (int, float)),
    ("queue_depth_max", int),
]

POLICY_SCHEMA = [
    ("makespan_s", (int, float)),
    ("parallel_efficiency", (int, float)),
    ("core_busy_fraction_mean", (int, float)),
    ("core_busy_fraction_max", (int, float)),
]

OVERHEAD_SCHEMA = [
    ("overhead_ratio", (int, float)),
    ("budget", (int, float)),
    ("within_budget", bool),
]


def check_comparison(results, label, errors):
    comparison = results.get("comparison")
    if not isinstance(comparison, dict):
        errors.append(f"{label}: missing/invalid 'comparison' block")
        return
    config = comparison.get("graph", {})
    policies = comparison.get("policies")
    if not isinstance(policies, dict) or len(policies) < 2:
        errors.append(f"{label}: comparison must cover at least two policies")
        return
    for name, block in policies.items():
        plabel = f"{label}.policies.{name}"
        check_schema(block, POLICY_SCHEMA, plabel, errors)
        counters = block.get("counters")
        if not isinstance(counters, dict):
            errors.append(f"{plabel}: missing 'counters' block")
            continue
        check_schema(counters, COUNTER_SCHEMA, plabel, errors)
        if counters.get("pops", 0) < 1:
            errors.append(f"{plabel}: scheduler recorded no pops")
        n_tasks = config.get("n_tasks")
        if isinstance(n_tasks, int) and counters.get("pops") != n_tasks:
            errors.append(
                f"{plabel}: pops {counters.get('pops')} != graph n_tasks "
                f"{n_tasks} (policies must run the same graph)"
            )
    # Locality-vs-oblivious: the studied policy must win on hit rate when
    # the baseline is hint-oblivious and the graph issued hints at all.
    names = list(policies)
    try:
        rates = {
            n: lookup(policies[n], "counters.locality_hit_rate") for n in names
        }
        hinted = {
            n: lookup(policies[n], "counters.hinted_pushes") for n in names
        }
        if min(hinted.values()) > 0 and len(set(names)) >= 2:
            best = max(rates.values())
            if rates[names[0]] < best:
                errors.append(
                    f"{label}: studied policy {names[0]!r} hit rate "
                    f"{rates[names[0]]:.3f} below comparison "
                    f"{best:.3f} — locality accounting looks inverted"
                )
    except KeyError:
        pass  # already reported


def check_overhead(results, label, errors, budget):
    overhead = results.get("overhead")
    if overhead is None:
        return  # comparison-only report (obs-report --no-overhead)
    olabel = f"{label}.overhead"
    check_schema(overhead, OVERHEAD_SCHEMA, olabel, errors)
    for half in ("disabled", "enabled"):
        block = overhead.get(half)
        if not isinstance(block, dict):
            errors.append(f"{olabel}: missing {half!r} timing block")
            continue
        check_timing_block(block, f"{olabel}.{half}", errors)
    try:
        ratio = lookup(overhead, "overhead_ratio")
        if ratio > budget:
            errors.append(
                f"{olabel}: overhead_ratio {ratio:.4f} exceeds budget "
                f"{budget} — enabling metrics is no longer (near-)free"
            )
        if ratio <= 0:
            errors.append(f"{olabel}: overhead_ratio must be positive")
    except KeyError:
        pass  # already reported


def check_report(report, label, errors, budget):
    check_envelope(report, label, errors, bench="obs_overhead")
    results = report.get("results")
    if not isinstance(results, dict):
        errors.append(f"{label}: missing/invalid 'results' block")
        return
    check_comparison(results, label, errors)
    check_overhead(results, label, errors, budget)


def main(argv) -> int:
    args = list(argv[1:])
    budget = DEFAULT_BUDGET
    if "--budget" in args:
        i = args.index("--budget")
        try:
            budget = float(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__)
            return 2
        del args[i:i + 2]
    if not args:
        print(__doc__)
        return 2
    errors: list = []
    for path in args:
        check_report(load_report(path), path, errors, budget)
    return finish(errors, [f"{path}: obs report OK" for path in args])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
