#!/usr/bin/env python
"""Gate a ``BENCH_fusion.json`` fusion-policy ablation report.

Used by the CI smoke target (``make smoke-fusion``).  Beyond schema
shape, this gate enforces the fusion *outcomes* (docs/PERF.md):

* the threaded ladder records a timing block per fusion mode
  (``off``/``gates``/``gates+act``/``wavefront``) and the full ladder's
  ``speedup_median.wavefront`` must exceed ``--min-speedup``
  (default 1.0; the committed paper-scale baseline is gated at 1.5);
* the simulated duration-weighted critical path is monotone
  non-increasing along the ladder and ``wavefront``'s ``cp_ratio`` falls
  below ``--max-cp-ratio`` (default 0.686 — the fused-projection bar);
* the wavefront graph is strictly wider than the layer-ordered build and
  carries zero linter/analyzer findings (tile declarations are exact);
* the gate-GEMM flop split conserves exactly
  (``flops_conserved == true``).

    python tools/check_fusion_report.py BENCH_fusion.json [...]
    python tools/check_fusion_report.py --min-speedup 1.5 BENCH_fusion.json
"""

from __future__ import annotations

import sys

from _reportlib import (
    check_envelope,
    check_schema,
    check_timing_block,
    finish,
    load_report,
    lookup,
)

DEFAULT_MIN_SPEEDUP = 1.0
DEFAULT_MAX_CP_RATIO = 0.686

#: the fusion ladder, baseline first — must match repro.harness.fusionbench.MODES
MODES = ("off", "gates", "gates+act", "wavefront")

SIM_MODE_SCHEMA = [
    ("batch_s", (int, float)),
    ("critical_path_s", (int, float)),
    ("n_tasks", (int, float)),
    ("cp_ratio", (int, float)),
]

ANALYSIS_SCHEMA = [
    ("wavefront_width", (int, float)),
    ("wavefront_avg_parallelism", (int, float)),
    ("layered_width", (int, float)),
    ("layered_avg_parallelism", (int, float)),
    ("lint_findings", (int, float)),
    ("analyzer_findings", (int, float)),
]


def check_threaded(results, label, errors, min_speedup):
    threaded = results.get("threaded")
    if not isinstance(threaded, dict):
        errors.append(f"{label}: missing/invalid 'threaded' block")
        return
    tlabel = f"{label}.threaded"
    for mode in MODES:
        block = threaded.get(mode)
        if not isinstance(block, dict):
            errors.append(f"{tlabel}: missing {mode!r} timing block")
            continue
        check_timing_block(block, f"{tlabel}.{mode}", errors)
    speedups = threaded.get("speedup_median")
    if not isinstance(speedups, dict):
        errors.append(f"{tlabel}: missing 'speedup_median' block")
        return
    for mode in MODES[1:]:
        value = speedups.get(mode)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{tlabel}.speedup_median: missing/mistyped {mode!r}")
            return
    if speedups["wavefront"] < min_speedup:
        errors.append(
            f"{tlabel}: speedup_median.wavefront {speedups['wavefront']:.3f} "
            f"below {min_speedup} — the full fusion ladder no longer beats "
            "the unfused baseline by the required margin"
        )


def check_sim(results, label, errors, max_cp_ratio):
    sim = results.get("sim")
    if not isinstance(sim, dict):
        errors.append(f"{label}: missing/invalid 'sim' block")
        return
    slabel = f"{label}.sim"
    for mode in MODES:
        block = sim.get(mode)
        if not isinstance(block, dict):
            errors.append(f"{slabel}: missing {mode!r} block")
            return
        check_schema(block, SIM_MODE_SCHEMA, f"{slabel}.{mode}", errors)
    try:
        ratios = [lookup(sim, f"{mode}.cp_ratio") for mode in MODES]
    except KeyError:
        return  # already reported
    if ratios[-1] >= max_cp_ratio:
        errors.append(
            f"{slabel}: wavefront cp_ratio {ratios[-1]:.4f} not below "
            f"{max_cp_ratio} — the duration-weighted critical path no "
            "longer clears the fused-projection bar"
        )
    # Monotone non-increasing along the ladder, with 5 % slack: at smoke
    # (tiny) shapes the projection hoisting that the upper rungs compose
    # with can nudge adjacent rungs within a few percent of each other.
    for prev, mode, prev_r, r in zip(MODES, MODES[1:], ratios, ratios[1:]):
        if r > prev_r * 1.05:
            errors.append(
                f"{slabel}: cp_ratio not monotone — {mode!r} ({r:.4f}) "
                f"exceeds {prev!r} ({prev_r:.4f})"
            )
    try:
        if lookup(sim, "wavefront.n_tasks") >= lookup(sim, "gates.n_tasks"):
            errors.append(
                f"{slabel}: wavefront task count did not shrink vs gates"
            )
    except KeyError:
        pass  # already reported


def check_analysis(results, label, errors):
    analysis = results.get("analysis")
    if not isinstance(analysis, dict):
        errors.append(f"{label}: missing/invalid 'analysis' block")
        return
    alabel = f"{label}.analysis"
    check_schema(analysis, ANALYSIS_SCHEMA, alabel, errors)
    try:
        if lookup(analysis, "lint_findings") != 0:
            errors.append(
                f"{alabel}: {analysis['lint_findings']:.0f} graph-lint "
                "findings — tiled declarations are no longer exact"
            )
        if lookup(analysis, "analyzer_findings") != 0:
            errors.append(
                f"{alabel}: {analysis['analyzer_findings']:.0f} analyzer "
                "findings — fused tasks flagged (e.g. over-declaration)"
            )
        if lookup(analysis, "wavefront_width") <= lookup(analysis, "layered_width"):
            errors.append(
                f"{alabel}: wavefront width "
                f"{analysis['wavefront_width']:.1f} not above layered "
                f"{analysis['layered_width']:.1f} — the diagonal is gone"
            )
    except KeyError:
        pass  # already reported


def check_report(report, label, errors, min_speedup, max_cp_ratio):
    check_envelope(report, label, errors, bench="fusion")
    results = report.get("results")
    if not isinstance(results, dict):
        errors.append(f"{label}: missing/invalid 'results' block")
        return
    check_threaded(results, label, errors, min_speedup)
    check_sim(results, label, errors, max_cp_ratio)
    check_analysis(results, label, errors)
    if results.get("flops_conserved") is not True:
        errors.append(
            f"{label}: flops_conserved is not true — the per-gate GEMM "
            "flop split no longer sums exactly to the stacked total"
        )


def main(argv) -> int:
    args = list(argv[1:])
    min_speedup = DEFAULT_MIN_SPEEDUP
    max_cp_ratio = DEFAULT_MAX_CP_RATIO
    for flag, caster in (("--min-speedup", float), ("--max-cp-ratio", float)):
        if flag in args:
            i = args.index(flag)
            try:
                value = caster(args[i + 1])
            except (IndexError, ValueError):
                print(__doc__)
                return 2
            del args[i:i + 2]
            if flag == "--min-speedup":
                min_speedup = value
            else:
                max_cp_ratio = value
    if not args:
        print(__doc__)
        return 2
    errors: list = []
    for path in args:
        check_report(load_report(path), path, errors, min_speedup, max_cp_ratio)
    return finish(errors, [f"{path}: fusion report OK" for path in args])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
