#!/usr/bin/env python
"""Gate a ``BENCH_multiproc.json`` executor-substrate report.

Used by the CI smoke target (``make smoke-mp``).  The report compares the
multiprocess executor against the threaded executor in two regimes
(docs/EXECUTORS.md):

* unconditional invariants — any recording, any host:

  - timing blocks for both substrates in both regimes
    (``gil_bound``/``default``);
  - ``bitwise_identical`` is ``true`` (the substrates computed the same
    bits at paper scale);
  - ``leaked_segments`` is ``0`` (no ``/dev/shm`` entry survived the
    run — the crash-safe cleanup epilogue held).

* speed-up bars — enforced **only when** ``results.host_cores >= 2``,
  because parallel speed-up cannot exist on a single core; a waived bar
  prints a notice rather than silently passing:

  - ``regimes.gil_bound.speedup_median`` ≥ ``--min-gil-speedup``
    (default 1.3): worker processes beat the GIL-serialised threads on
    the fully unfused, pointwise-heavy configuration;
  - ``regimes.default.speedup_median`` ≥ ``--min-default-speedup``
    (default 0.9): shared-memory transport costs ≤10 % where BLAS
    already parallelises the threaded executor.

    python tools/check_multiproc_report.py BENCH_multiproc.json [...]
    python tools/check_multiproc_report.py --min-gil-speedup 1.3 report.json
"""

from __future__ import annotations

import sys

from _reportlib import (
    check_envelope,
    check_timing_block,
    finish,
    lookup,
    load_report,
)

DEFAULT_MIN_GIL_SPEEDUP = 1.3
DEFAULT_MIN_DEFAULT_SPEEDUP = 0.9

#: must match repro.harness.mpbench.REGIMES names
REGIMES = ("gil_bound", "default")


def check_regime(regimes, name, label, errors):
    block = regimes.get(name)
    if not isinstance(block, dict):
        errors.append(f"{label}: missing regime block {name!r}")
        return None
    rlabel = f"{label}.{name}"
    for substrate in ("threaded", "process"):
        timing = block.get(substrate)
        if not isinstance(timing, dict):
            errors.append(f"{rlabel}: missing {substrate!r} timing block")
            continue
        check_timing_block(timing, f"{rlabel}.{substrate}", errors)
    speedup = block.get("speedup_median")
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        errors.append(f"{rlabel}: missing/mistyped 'speedup_median'")
        return None
    if block.get("bitwise_identical") is not True:
        errors.append(
            f"{rlabel}: bitwise_identical is not true — the process "
            "executor computed different bits than the threaded executor"
        )
    return speedup


def check_report(report, label, errors, min_gil, min_default):
    check_envelope(report, label, errors, bench="multiproc")
    results = report.get("results")
    if not isinstance(results, dict):
        errors.append(f"{label}: missing/invalid 'results' block")
        return
    regimes = results.get("regimes")
    if not isinstance(regimes, dict):
        errors.append(f"{label}: missing/invalid 'results.regimes' block")
        return
    speedups = {
        name: check_regime(regimes, name, f"{label}.regimes", errors)
        for name in REGIMES
    }
    if results.get("bitwise_identical") is not True:
        errors.append(f"{label}: results.bitwise_identical is not true")
    leaked = results.get("leaked_segments")
    if leaked != 0:
        errors.append(
            f"{label}: leaked_segments is {leaked!r} — a /dev/shm segment "
            "survived the run (guaranteed-cleanup invariant broken)"
        )
    host_cores = results.get("host_cores")
    if not isinstance(host_cores, int) or isinstance(host_cores, bool):
        errors.append(f"{label}: missing/mistyped 'results.host_cores'")
        return
    if host_cores < 2:
        print(
            f"{label}: NOTICE — recorded on a {host_cores}-core host; "
            "speed-up bars waived (parallel speed-up is unmeasurable on "
            "one core); schema, bitwise and leak invariants still gated",
            file=sys.stderr,
        )
        return
    bars = (
        ("gil_bound", min_gil,
         "worker processes no longer beat the GIL-serialised threads"),
        ("default", min_default,
         "shared-memory transport overhead exceeds the budget"),
    )
    for name, bar, meaning in bars:
        s = speedups.get(name)
        if s is None:
            continue  # already reported
        if s < bar:
            errors.append(
                f"{label}: regimes.{name}.speedup_median {s:.3f} below "
                f"{bar} — {meaning}"
            )


def main(argv) -> int:
    args = list(argv[1:])
    min_gil = DEFAULT_MIN_GIL_SPEEDUP
    min_default = DEFAULT_MIN_DEFAULT_SPEEDUP
    for flag in ("--min-gil-speedup", "--min-default-speedup"):
        if flag in args:
            i = args.index(flag)
            try:
                value = float(args[i + 1])
            except (IndexError, ValueError):
                print(__doc__)
                return 2
            del args[i:i + 2]
            if flag == "--min-gil-speedup":
                min_gil = value
            else:
                min_default = value
    if not args:
        print(__doc__)
        return 2
    errors: list = []
    for path in args:
        check_report(load_report(path), path, errors, min_gil, min_default)
    return finish(errors, [f"{path}: multiproc report OK" for path in args])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
