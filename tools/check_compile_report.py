#!/usr/bin/env python
"""Gate a ``BENCH_compile.json`` compiled-plan replay report.

Used by the CI smoke target (``make smoke-compile``).  Beyond schema
shape, this gate enforces the compilation *outcomes*:

* replaying a compiled plan must reduce per-batch runtime overhead vs
  dynamic dependence resolution: ``overhead.reduction_ratio`` (replay vs
  the cheapest dynamic policy) must exceed ``--min-reduction``
  (default 1.0);
* the plan's transitive reduction did real work: the reduced edge set is
  strictly smaller than the declared one, the redundant fraction lies in
  (0, 1), and declared = reduced + redundant;
* the serving plan cache behaves: every warm shape hit
  (``warm_hit_rate == 1.0``) and exactly one compile per shape;
* compiled-plan replay is bitwise identical to the dynamic schedule.

    python tools/check_compile_report.py BENCH_compile.json [...]
    python tools/check_compile_report.py --min-reduction 1.05 smoke.json
"""

from __future__ import annotations

import sys

from _reportlib import (
    check_envelope,
    check_schema,
    check_timing_block,
    finish,
    load_report,
    lookup,
)

DEFAULT_MIN_REDUCTION = 1.0

PLAN_SCHEMA = [
    ("n_tasks", (int, float)),
    ("n_edges_declared", (int, float)),
    ("n_edges_reduced", (int, float)),
    ("n_edges_redundant", (int, float)),
    ("redundant_edge_fraction", (int, float)),
    ("critical_path_s", (int, float)),
    ("est_makespan_s", (int, float)),
    ("compile_time_s", (int, float)),
]

CACHE_SCHEMA = [
    ("hits", int),
    ("misses", int),
    ("evictions", int),
    ("compiles", int),
    ("size", int),
    ("capacity", int),
    ("hit_rate", (int, float)),
    ("last_compile_s", (int, float)),
]

SERVING_SCHEMA = [
    ("n_batches", int),
    ("n_shapes", int),
    ("warm_hit_rate", (int, float)),
]

EQUIVALENCE_SCHEMA = [
    ("bitwise_identical", bool),
    ("mismatched_arrays", list),
]


def check_overhead(results, label, errors, min_reduction):
    overhead = results.get("overhead")
    if not isinstance(overhead, dict):
        errors.append(f"{label}: missing/invalid 'overhead' block")
        return
    olabel = f"{label}.overhead"
    modes = [k for k in overhead if k.startswith("dynamic_")] + ["replay"]
    if len(modes) < 3:
        errors.append(
            f"{olabel}: expected at least two dynamic baselines plus replay"
        )
    for mode in modes:
        block = overhead.get(mode)
        if not isinstance(block, dict):
            errors.append(f"{olabel}: missing {mode!r} timing block")
            continue
        check_timing_block(block, f"{olabel}.{mode}", errors)
    try:
        ratio = lookup(overhead, "reduction_ratio")
    except KeyError:
        errors.append(f"{olabel}: missing key 'reduction_ratio'")
        return
    if not isinstance(ratio, (int, float)) or isinstance(ratio, bool):
        errors.append(f"{olabel}: reduction_ratio has type {type(ratio).__name__}")
        return
    if ratio <= min_reduction:
        errors.append(
            f"{olabel}: reduction_ratio {ratio:.4f} does not exceed "
            f"{min_reduction} — plan replay no longer beats dynamic "
            "dependence resolution"
        )


def check_plan(results, label, errors):
    plan = results.get("plan")
    if not isinstance(plan, dict):
        errors.append(f"{label}: missing/invalid 'plan' block")
        return
    plabel = f"{label}.plan"
    check_schema(plan, PLAN_SCHEMA, plabel, errors)
    try:
        declared = lookup(plan, "n_edges_declared")
        reduced = lookup(plan, "n_edges_reduced")
        redundant = lookup(plan, "n_edges_redundant")
        fraction = lookup(plan, "redundant_edge_fraction")
    except KeyError:
        return  # already reported
    if reduced + redundant != declared:
        errors.append(
            f"{plabel}: declared {declared:.0f} != reduced {reduced:.0f} + "
            f"redundant {redundant:.0f}"
        )
    if not 0.0 < fraction < 1.0:
        errors.append(
            f"{plabel}: redundant_edge_fraction {fraction} outside (0, 1) — "
            "the bench graph should give the transitive reduction real work"
        )
    if lookup(plan, "compile_time_s") < 0:
        errors.append(f"{plabel}: compile_time_s is negative")


def check_serving(results, label, errors):
    serving = results.get("serving")
    if not isinstance(serving, dict):
        errors.append(f"{label}: missing/invalid 'serving' block")
        return
    slabel = f"{label}.serving"
    check_schema(serving, SERVING_SCHEMA, slabel, errors)
    cache = serving.get("cache")
    if not isinstance(cache, dict):
        errors.append(f"{slabel}: missing 'cache' block")
        return
    check_schema(cache, CACHE_SCHEMA, slabel + ".cache", errors)
    try:
        if lookup(serving, "warm_hit_rate") != 1.0:
            errors.append(
                f"{slabel}: warm_hit_rate {serving['warm_hit_rate']} != 1.0 "
                "— a repeated shape missed the plan cache"
            )
        n_shapes = lookup(serving, "n_shapes")
        if lookup(cache, "compiles") != n_shapes:
            errors.append(
                f"{slabel}: {cache['compiles']} compiles for {n_shapes} "
                "shapes — each shape must compile exactly once"
            )
    except KeyError:
        pass  # already reported


def check_equivalence(results, label, errors):
    equivalence = results.get("equivalence")
    if not isinstance(equivalence, dict):
        errors.append(f"{label}: missing/invalid 'equivalence' block")
        return
    elabel = f"{label}.equivalence"
    check_schema(equivalence, EQUIVALENCE_SCHEMA, elabel, errors)
    if equivalence.get("bitwise_identical") is not True:
        errors.append(
            f"{elabel}: replayed results are not bitwise identical to the "
            f"dynamic schedule (mismatched: {equivalence.get('mismatched_arrays')})"
        )


def check_report(report, label, errors, min_reduction):
    check_envelope(report, label, errors, bench="compile")
    results = report.get("results")
    if not isinstance(results, dict):
        errors.append(f"{label}: missing/invalid 'results' block")
        return
    check_overhead(results, label, errors, min_reduction)
    check_plan(results, label, errors)
    check_serving(results, label, errors)
    check_equivalence(results, label, errors)


def main(argv) -> int:
    args = list(argv[1:])
    min_reduction = DEFAULT_MIN_REDUCTION
    if "--min-reduction" in args:
        i = args.index("--min-reduction")
        try:
            min_reduction = float(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__)
            return 2
        del args[i:i + 2]
    if not args:
        print(__doc__)
        return 2
    errors: list = []
    for path in args:
        check_report(load_report(path), path, errors, min_reduction)
    return finish(errors, [f"{path}: compile report OK" for path in args])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
