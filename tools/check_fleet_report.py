#!/usr/bin/env python
"""Gate a ``BENCH_fleet.json`` fleet-serving soak report.

Used by the CI smoke target (``make smoke-fleet``).  Beyond schema shape,
this gate enforces the fleet *outcomes* (docs/SERVING.md):

* the calibrated fleet rate is at least ``--min-rate-ratio`` × the
  single-replica rate (default 3.0) and the fleet sustains it at p99 SLO
  attainment ≥ ``--min-attainment`` (default 0.99);
* the same rate demonstrably overwhelms a single replica
  (``single_at_fleet_rate.attainment < 0.9``), so the fleet section
  measures scaling, not slack;
* bursty overload is *shed at admission*, not served late: sheds > 0
  and the completed requests' attainment stays ≥ ``--min-attainment``;
* the per-shape warm compiled-plan hit rate after warmup is
  ≥ ``--min-warm-rate`` (default 0.9);
* the consistent-hash router compiles strictly fewer plans than
  least-loaded on the same workload (shape affinity keeps plans warm);
* request accounting adds up in every section
  (completed + shed == total, shed_reasons sums to shed).

    python tools/check_fleet_report.py BENCH_fleet.json
    python tools/check_fleet_report.py --min-warm-rate 0.95 BENCH_fleet.json
"""

from __future__ import annotations

import sys

from _reportlib import check_envelope, check_schema, finish, load_report, lookup

DEFAULT_MIN_RATE_RATIO = 3.0
DEFAULT_MIN_ATTAINMENT = 0.99
DEFAULT_MIN_WARM_RATE = 0.9

#: serving sections of the results block, in report order
SECTIONS = (
    "single_at_single_rate",
    "single_at_fleet_rate",
    "fleet_at_fleet_rate",
    "bursty_overload",
)

CALIBRATION_SCHEMA = [
    ("service_full_s", (int, float)),
    ("capacity_rps", (int, float)),
    ("single_rate_hz", (int, float)),
    ("fleet_rate_hz", (int, float)),
    ("slo_s", (int, float)),
    ("rate_ratio", (int, float)),
]

SECTION_SCHEMA = [
    ("requests", int),
    ("completed", int),
    ("shed", int),
    ("shed_reasons", dict),
    ("throughput_rps", (int, float)),
    ("attainment", (int, float)),
    ("completed_attainment", (int, float)),
    ("late_completions", int),
    ("routing", dict),
    ("warmup_compiled", int),
]

ROUTER_SCHEMA = [
    ("compiles", int),
    ("warm_hit_rate", (int, float)),
    ("warmup_compiled", int),
]


def check_section(results, name, errors):
    section = results.get(name)
    if not isinstance(section, dict):
        errors.append(f"results.{name}: missing or not an object")
        return
    check_schema(section, SECTION_SCHEMA, f"results.{name}", errors)
    try:
        total = lookup(section, "requests")
        if lookup(section, "completed") + lookup(section, "shed") != total:
            errors.append(f"results.{name}: request accounting does not add up")
        if sum(lookup(section, "shed_reasons").values()) != lookup(section, "shed"):
            errors.append(f"results.{name}: shed_reasons does not sum to shed")
    except KeyError:
        pass  # already reported


def main(argv) -> int:
    min_rate_ratio = DEFAULT_MIN_RATE_RATIO
    min_attainment = DEFAULT_MIN_ATTAINMENT
    min_warm_rate = DEFAULT_MIN_WARM_RATE
    args = list(argv[1:])
    paths = []
    while args:
        arg = args.pop(0)
        if arg == "--min-rate-ratio":
            min_rate_ratio = float(args.pop(0))
        elif arg == "--min-attainment":
            min_attainment = float(args.pop(0))
        elif arg == "--min-warm-rate":
            min_warm_rate = float(args.pop(0))
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__)
        return 2
    report = load_report(paths[0])

    errors: list = []
    check_envelope(report, paths[0], errors, bench="fleet")
    results = report.get("results", {})
    calibration = results.get("calibration", {})
    check_schema(calibration, CALIBRATION_SCHEMA, "results.calibration", errors)
    for name in SECTIONS:
        check_section(results, name, errors)
    for router in ("hash", "least_loaded"):
        check_schema(
            results.get("routers", {}).get(router, {}),
            ROUTER_SCHEMA, f"results.routers.{router}", errors,
        )
    if errors:
        return finish(errors, [])

    # outcome gates (schema is known-good from here on)
    if calibration["rate_ratio"] < min_rate_ratio:
        errors.append(
            f"rate_ratio {calibration['rate_ratio']:.2f} below {min_rate_ratio}"
        )
    fleet = results["fleet_at_fleet_rate"]
    if fleet["attainment"] < min_attainment:
        errors.append(
            f"fleet attainment {fleet['attainment']:.4f} below {min_attainment}"
        )
    if fleet.get("warm_hit_rate") is None or fleet["warm_hit_rate"] < min_warm_rate:
        errors.append(
            f"fleet warm_hit_rate {fleet.get('warm_hit_rate')} below {min_warm_rate}"
        )
    single_hot = results["single_at_fleet_rate"]
    if single_hot["attainment"] >= 0.9:
        errors.append(
            "single replica sustains the fleet rate "
            f"(attainment {single_hot['attainment']:.4f}) — no scaling measured"
        )
    bursty = results["bursty_overload"]
    if bursty["shed"] == 0:
        errors.append("bursty overload shed nothing — admission control inert")
    if bursty["completed_attainment"] < min_attainment:
        errors.append(
            f"bursty completed_attainment {bursty['completed_attainment']:.4f} "
            f"below {min_attainment} — overload served late instead of shed"
        )
    routers = results["routers"]
    if routers["hash"]["compiles"] >= routers["least_loaded"]["compiles"]:
        errors.append(
            f"hash router compiled {routers['hash']['compiles']} plans, "
            f"least_loaded {routers['least_loaded']['compiles']} — "
            "shape affinity is not reducing compilation"
        )

    return finish(
        errors,
        [
            f"{paths[0]}: fleet report OK — "
            f"x{calibration['rate_ratio']:.1f} rate at attainment "
            f"{fleet['attainment']:.4f}, warm hit rate "
            f"{fleet['warm_hit_rate']:.3f}, bursty sheds {bursty['shed']}",
        ],
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
