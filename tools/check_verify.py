#!/usr/bin/env python
"""CI gate for the symbolic dependence verifier's certificate.

Validates a ``repro.cert.v1`` certificate produced by::

    PYTHONPATH=src python -m repro analyze --skip-graph \
        --verify --strict --verify-output VERIFY_CERT.json

and fails the build (exit 1) unless the certificate proves the full
claim:

1. **Family coverage** — every family in the declared matrix certified
   (``n_certified == n_families``), each with every instance clean and
   the size-isomorphism rebuild intact.
2. **Mutation kill** — all four seeded defect kinds (dropped edge,
   shrunk region, widened write, dropped plan edge) detected, each
   naming an exact two-task offending pair.
3. **Dynamic cross-validation** — at least ``--min-samples`` concrete
   configs replayed through the dynamic race checker with zero
   findings.

Standalone by design: reads the certificate JSON directly, no
``PYTHONPATH=src`` needed, so a broken repro package cannot take the
certificate *checker* down with it.

Usage::

    python tools/check_verify.py VERIFY_CERT.json [--min-samples 8] [--min-families 96]
"""

from __future__ import annotations

import argparse
import sys

from _reportlib import check_schema, finish, load_report, lookup

CERT_FORMAT = "repro.cert.v1"

MUTATION_KINDS = ("drop_edge", "shrink_region", "widen_write", "drop_plan_edge")

CERT_SCHEMA = [
    ("format", str),
    ("model", dict),
    ("model.symbolic_parameters", list),
    ("n_families", int),
    ("n_certified", int),
    ("families", list),
    ("mutations", dict),
    ("cross_validation", dict),
    ("ok", bool),
]

FAMILY_SCHEMA = [
    ("label", str),
    ("cell", str),
    ("fusion", str),
    ("instances", list),
    ("size_isomorphism", bool),
    ("findings", list),
    ("ok", bool),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cert", help="repro.cert.v1 certificate JSON")
    parser.add_argument("--min-samples", type=int, default=8,
                        help="least acceptable cross-validation sample count")
    parser.add_argument("--min-families", type=int, default=96,
                        help="least acceptable certified-family count")
    args = parser.parse_args(argv)

    errors: list = []
    try:
        cert = load_report(args.cert)
    except (OSError, ValueError) as exc:
        print(f"SCHEMA ERROR: {args.cert}: {exc}", file=sys.stderr)
        return 1

    check_schema(cert, CERT_SCHEMA, "cert", errors)
    if errors:
        return finish(errors, [])

    if cert["format"] != CERT_FORMAT:
        errors.append(f"cert: format {cert['format']!r} (expected {CERT_FORMAT!r})")

    # 1. family coverage
    families = cert["families"]
    if len(families) != cert["n_families"]:
        errors.append(
            f"cert: families lists {len(families)} entries, "
            f"n_families says {cert['n_families']}"
        )
    if cert["n_families"] < args.min_families:
        errors.append(
            f"cert: only {cert['n_families']} families "
            f"(expected >= {args.min_families})"
        )
    if cert["n_certified"] != cert["n_families"]:
        errors.append(
            f"cert: {cert['n_families'] - cert['n_certified']} of "
            f"{cert['n_families']} families uncertified"
        )
    labels = set()
    for i, entry in enumerate(families):
        label = entry.get("label", f"families[{i}]")
        check_schema(entry, FAMILY_SCHEMA, label, errors)
        labels.add(label)
        if not entry.get("ok", False):
            errors.append(f"{label}: not certified")
            for f in entry.get("findings", [])[:4]:
                errors.append(f"{label}: finding {f}")
        if not entry.get("size_isomorphism", False):
            errors.append(f"{label}: size-isomorphism rebuild diverged")
        for inst in entry.get("instances", []):
            if not inst.get("ok", False):
                shape = (inst.get("seq_len"), inst.get("mbs"), inst.get("block"))
                errors.append(f"{label}: instance {shape} has findings")
            if inst.get("pairs_proved", 0) <= 0:
                errors.append(f"{label}: instance proved zero disjoint pairs")
            if inst.get("plan_edges_checked", 0) <= 0:
                errors.append(f"{label}: instance checked zero plan edges")
    if len(labels) != len(families):
        errors.append("cert: duplicate family labels")

    # 2. mutation kill
    mutations = cert["mutations"]
    if not mutations.get("all_detected", False):
        errors.append("mutations: all_detected is false")
    for kind in MUTATION_KINDS:
        entry = mutations.get(kind)
        if not isinstance(entry, dict):
            errors.append(f"mutations: missing kind {kind!r}")
            continue
        if not entry.get("detected", False):
            errors.append(f"mutations: {kind} not detected")
        pair = entry.get("pair")
        if not (isinstance(pair, list) and len(pair) == 2 and all(pair)):
            errors.append(f"mutations: {kind} lacks an exact offending pair")

    # 3. dynamic cross-validation
    cross = cert["cross_validation"]
    check_schema(cross, [("samples", int), ("entries", list), ("ok", bool)],
                 "cross_validation", errors)
    if cross.get("samples", 0) < args.min_samples:
        errors.append(
            f"cross_validation: only {cross.get('samples', 0)} samples "
            f"(expected >= {args.min_samples})"
        )
    if not cross.get("ok", False):
        errors.append("cross_validation: dynamic findings disagree with proof")
    for entry in cross.get("entries", []):
        if entry.get("findings", 1) != 0:
            errors.append(
                f"cross_validation: {entry.get('family')} had "
                f"{entry.get('findings')} dynamic findings"
            )
        if entry.get("observed_tasks", 0) <= 0:
            errors.append(
                f"cross_validation: {entry.get('family')} observed no tasks"
            )

    if not cert["ok"]:
        errors.append("cert: overall ok is false")

    return finish(errors, [
        f"OK: {cert['n_certified']}/{cert['n_families']} families certified "
        f"({cert['format']})",
        f"OK: mutations detected with exact pairs: {', '.join(MUTATION_KINDS)}",
        f"OK: cross-validated against dynamic racecheck on "
        f"{cross['samples']} configs, zero findings",
    ])


if __name__ == "__main__":
    sys.exit(main())
