"""Ablation: the gate-GEMM/activation fusion ladder + wavefront tiling.

The fusion policy (``fusion`` on :class:`~repro.config.ExecutionConfig`,
docs/PERF.md) generalises the fused-projection optimisation into a
cumulative ladder: per-gate GEMMs (``off``) → stacked gate GEMM
(``gates``) → in-payload activations (``gates+act``) → wavefront chain
tiling (``wavefront``).  This bench quantifies each rung on both
substrates:

* **threaded** — real wall time on the host at the paper-scale recorded
  configuration.  The full ladder (``wavefront``) must clear 1.5× median
  inference throughput over the fully unfused baseline — above the 1.35×
  the fused-projection bench records for hoisting alone; the record lands
  in ``benchmarks/baselines/BENCH_fusion.json``.
* **sim** — cost-only graphs on the modelled 48-core Xeon.  The
  duration-weighted critical path (standalone task costs) must fall below
  0.686× the unfused baseline for ``wavefront`` — i.e. beat the fused
  projection's flop-weighted 0.686 bar on the stronger duration metric.
* **static analysis** — the wavefront graph must be *wider* than the
  layer-ordered build (the diagonal is real concurrency, not padding) and
  produce zero linter/analyzer findings (tile declarations are exact).

Set ``REPRO_BENCH_FULL=1`` for the wider grids.
"""

import pytest

from benchmarks.common import emit_bench_json, full_grids, run_once
from repro.harness.fusionbench import (
    RECORD_CONFIG,
    make_spec,
    run_fusion_bench,
    simulated_fusion_comparison,
    wavefront_analysis_contrast,
)

#: acceptance bars for the recorded paper-scale configuration
MIN_THREADED_SPEEDUP = 1.5
MAX_WAVEFRONT_CP_RATIO = 0.686


def test_record_config(benchmark):
    """Paper-scale point: measure, assert the bars, and write the record."""
    point = run_once(
        benchmark,
        lambda: run_fusion_bench(
            **RECORD_CONFIG, iters=11 if full_grids() else 9, warmup=2
        ),
    )
    threaded = point["results"]["threaded"]
    sim = point["results"]["sim"]
    analysis = point["results"]["analysis"]
    path = emit_bench_json("fusion", point["config"], point["results"])
    print(f"\nfusion record -> {path}")
    for mode, s in threaded["speedup_median"].items():
        print(f"  threaded speedup[{mode}] = {s:.3f}x")
    for mode, row in sim.items():
        print(f"  sim cp_ratio[{mode}] = {row['cp_ratio']:.3f} "
              f"({int(row['n_tasks'])} tasks)")
    print(f"  width wavefront={analysis['wavefront_width']:.1f} "
          f"layered={analysis['layered_width']:.1f}")
    assert point["results"]["flops_conserved"]
    assert threaded["speedup_median"]["wavefront"] >= MIN_THREADED_SPEEDUP
    # each rung of the ladder must at least not regress the previous one
    assert threaded["speedup_median"]["gates"] >= 1.0
    assert threaded["speedup_median"]["gates+act"] >= 1.0
    # duration-weighted critical path: wavefront beats the projection bar
    assert sim["wavefront"]["cp_ratio"] < MAX_WAVEFRONT_CP_RATIO
    # ... and the ladder's cp is monotone non-increasing
    assert sim["gates"]["cp_ratio"] <= 1.0
    assert sim["gates+act"]["cp_ratio"] <= sim["gates"]["cp_ratio"]
    assert sim["wavefront"]["cp_ratio"] <= sim["gates+act"]["cp_ratio"]
    # static contrast: real diagonal concurrency, exact declarations
    assert analysis["wavefront_width"] > analysis["layered_width"]
    assert analysis["lint_findings"] == 0
    assert analysis["analyzer_findings"] == 0


@pytest.mark.parametrize("tile", [1, 4, 8, 25] if full_grids() else [1, 8, 25])
def test_sim_tile_sweep(benchmark, tile):
    """Task count falls with the tile size; the duration-weighted path
    stays below the unfused baseline at every tile."""
    spec = make_spec("lstm", 1024, 128, 2, "many_to_one")
    out = run_once(
        benchmark,
        lambda: simulated_fusion_comparison(spec, 100, 32, wavefront_tile=tile),
    )
    assert out["wavefront"]["cp_ratio"] < 1.0
    if tile > 1:
        # amortising tiles shrink the task count despite the extra proj
        # tasks the wavefront rung composes with (tile 1 degenerates to
        # per-step cells + hoisted projections: more tasks than unhoisted)
        assert out["wavefront"]["n_tasks"] < out["gates"]["n_tasks"]


@pytest.mark.parametrize("cell", ["lstm", "gru"])
def test_sim_cell_sweep(benchmark, cell):
    """The ladder's critical path is monotone for both gated cells."""
    spec = make_spec(cell, 1024, 128, 2, "many_to_one")
    out = run_once(benchmark, lambda: simulated_fusion_comparison(spec, 50, 32))
    assert out["gates"]["cp_ratio"] <= 1.0
    assert out["wavefront"]["cp_ratio"] <= out["gates+act"]["cp_ratio"]


@pytest.mark.parametrize("mbs", [1, 4])
def test_analysis_contrast(benchmark, mbs):
    """Wavefront graphs stay lint-clean and wider than layer-ordered at
    every chunking."""
    spec = make_spec("lstm", 256, 64, 2, "many_to_one")
    out = run_once(
        benchmark,
        lambda: wavefront_analysis_contrast(spec, 32, 16, mbs=mbs),
    )
    assert out["lint_findings"] == 0
    assert out["analyzer_findings"] == 0
    assert out["wavefront_width"] > out["layered_width"]


@pytest.mark.parametrize("seq_len", [12, 48])
def test_threaded_small_scale(benchmark, seq_len):
    """Small-host sanity: the whole ladder runs end-to-end and stays
    numerically live (no speed-up asserted at laptop scale)."""
    point = run_once(
        benchmark,
        lambda: run_fusion_bench(
            cell="gru", input_size=128, hidden=64, layers=2,
            seq_len=seq_len, batch=16, iters=3,
        ),
    )
    for mode, s in point["results"]["threaded"]["speedup_median"].items():
        assert s > 0.0
    assert point["results"]["flops_conserved"]
