"""Fig. 8 — many-to-many next-character prediction: B-Par vs Keras.

Paper shape: B-Par beats Keras-CPU on every (layers, hidden, batch)
configuration of the Wikipedia next-character task, with the maximum
speed-up growing with depth: 1.54x (2 layers), 2.17x (4), 2.38x (8),
2.44x (12).
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.harness.figures import fig8_next_char


def test_fig8_next_char(benchmark):
    if full_grids():
        kwargs = dict(layer_counts=(2, 4, 8, 12), batches=(128, 256), hiddens=(128, 256))
    else:
        kwargs = dict(layer_counts=(2, 8, 12), batches=(128,), hiddens=(128, 256))

    def run():
        return {
            "lstm": fig8_next_char(cell="lstm", **kwargs),
            "gru": fig8_next_char(cell="gru", **kwargs),
        }

    results = run_once(benchmark, run)
    print()
    for cell, rows in results.items():
        print(format_table(
            ["L", "hidden", "batch", "Keras s", "B-Par s", "speed-up"],
            [
                [r["layers"], r["hidden"], r["batch"],
                 round(r["keras"], 3), round(r["bpar"], 3), round(r["speedup"], 2)]
                for r in rows
            ],
            title=f"Fig. 8 (reproduced): next-char m2m, B{cell.upper()}",
        ))

    for cell, rows in results.items():
        for r in rows:
            cfg = (cell, r["layers"], r["hidden"], r["batch"])
            assert r["speedup"] > 1.0, f"{cfg}: B-Par lost to Keras"
            assert r["speedup"] < 5.0, f"{cfg}: speed-up implausibly high"
        # max speed-up grows with layer count (paper: 1.54 -> 2.44)
        by_layer = {}
        for r in rows:
            by_layer.setdefault(r["layers"], []).append(r["speedup"])
        layer_counts = sorted(by_layer)
        assert max(by_layer[layer_counts[-1]]) > max(by_layer[layer_counts[0]])
    benchmark.extra_info["max_speedup_lstm"] = max(r["speedup"] for r in results["lstm"])
