"""Table III — BLSTM single-batch training times and B-Par speed-ups.

Columns: K-CPU, K-GPU, P-CPU, P-GPU, B-Seq, B-Par (ms) plus B-Par-CPU
speed-ups against each framework.  Shape criteria (paper): B-Par beats
K-CPU on every row (1.17-2.34x there), beats P-CPU on every row (up to
9.16x), GPU wins the big-batch/long-sequence rows but loses batch-1 /
seq<=10 rows, and PyTorch-GPU 'hangs' (dash) above ~90M parameters.
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.harness.tables import (
    HEADERS,
    TABLE_CONFIGS,
    TABLE_CONFIGS_SMOKE,
    run_table,
)


def test_table3_blstm(benchmark):
    configs = TABLE_CONFIGS if full_grids() else TABLE_CONFIGS_SMOKE
    rows = run_once(benchmark, lambda: run_table("lstm", configs))
    print()
    print(format_table(HEADERS, [r.as_list() for r in rows],
                       title="Table III (reproduced): BLSTM training, ms/batch"))

    for row in rows:
        cfg = f"{row.input_size}/{row.hidden_size}/{row.batch}/{row.seq_len}"
        # B-Par always beats the CPU frameworks (paper: every row)
        assert row.speedup_k_cpu > 1.0, f"{cfg}: B-Par lost to Keras-CPU"
        assert row.speedup_p_cpu > 1.0, f"{cfg}: B-Par lost to PyTorch-CPU"
        # speed-up bands: paper reports 1.17-2.34x (K) and 1.30-9.16x (P);
        # allow modelling slack around the band edges
        assert 1.0 < row.speedup_k_cpu < 3.5, f"{cfg}: K speed-up {row.speedup_k_cpu}"
        assert 1.0 < row.speedup_p_cpu < 12.0, f"{cfg}: P speed-up {row.speedup_p_cpu}"
        # B-Seq never beats B-Par
        assert row.bseq_ms >= row.bpar_ms, f"{cfg}: B-Seq beat B-Par"
        # GPU crossover: wins big-batch long-seq rows, loses tiny ones
        if row.batch >= 128 and row.seq_len >= 100:
            assert row.k_gpu_ms < row.bpar_ms, f"{cfg}: K-GPU should win"
        if row.batch == 1 and row.seq_len <= 10:
            assert row.speedup_k_gpu > 1.0, f"{cfg}: B-Par should beat K-GPU"
            assert row.speedup_p_gpu > 1.0, f"{cfg}: B-Par should beat P-GPU"
        # PyTorch-GPU hangs above ~90M parameters (paper's table dashes)
        if row.params_m > 90:
            assert row.p_gpu_ms is None, f"{cfg}: P-GPU should hang"

    benchmark.extra_info["max_speedup_vs_keras"] = max(r.speedup_k_cpu for r in rows)
    benchmark.extra_info["max_speedup_vs_pytorch"] = max(r.speedup_p_cpu for r in rows)
