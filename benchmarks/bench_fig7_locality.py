"""Fig. 7 — impact of locality-aware scheduling (IPC / L3-MPKI / batch time).

Paper: on an 8-layer 31.7M-parameter BLSTM that exceeds the cache
hierarchy, the locality-aware scheduler (vs a locality-oblivious one)
moves execution time into higher IPC bands, out of high L3-MPKI bands, and
cuts mean batch time by ~20%.

Our region-granularity cache model reproduces the *direction* of all three
effects; the time magnitude is smaller (~2%) because sub-task panel-level
locality — most of the real machine's win — is below the model's
resolution.  See EXPERIMENTS.md.
"""

from benchmarks.common import run_once
from repro.analysis.report import format_table
from repro.harness.figures import fig7_locality


def test_fig7_locality(benchmark):
    study = run_once(benchmark, lambda: fig7_locality(mbs=2))
    print()
    print("Fig. 7 (reproduced): locality-aware vs locality-oblivious scheduling")
    print(f"  batch time: aware {study.time_aware_s:.3f}s, oblivious "
          f"{study.time_oblivious_s:.3f}s  ->  {100 * study.improvement:.1f}% faster "
          f"(paper ~20%)")
    print(format_table(
        ["IPC band", "aware %", "oblivious %"],
        [
            [label, round(100 * fa, 1), round(100 * fo, 1)]
            for (label, fa), (_, fo) in zip(study.ipc_aware.rows(), study.ipc_oblivious.rows())
        ],
        title="  time share per IPC band",
    ))
    print(format_table(
        ["MPKI band", "aware %", "oblivious %"],
        [
            [label, round(100 * fa, 1), round(100 * fo, 1)]
            for (label, fa), (_, fo) in zip(study.mpki_aware.rows(), study.mpki_oblivious.rows())
        ],
        title="  time share per L3-MPKI band",
    ))

    # direction of all three paper effects:
    assert study.improvement > 0, "locality-aware must not be slower"
    # more time in the top IPC band with locality awareness
    assert study.ipc_aware.fraction_in(1.5, 2.5) >= study.ipc_oblivious.fraction_in(1.5, 2.5)
    # less (or equal) time in the high-MPKI bands with locality awareness
    assert study.mpki_aware.fraction_in(10, float("inf")) <= (
        study.mpki_oblivious.fraction_in(10, float("inf")) + 1e-9
    )
    # more time in the low-MPKI bands
    assert study.mpki_aware.fraction_in(0, 5) >= study.mpki_oblivious.fraction_in(0, 5)
    benchmark.extra_info["improvement_pct"] = 100 * study.improvement
