"""Ablation — task granularity: one task per cell vs fused per-layer chains.

DESIGN.md §6.  B-Par maps one RNN cell update to one task; the coarse
alternative fuses each (chunk, layer, direction) chain into a single task.
Structural concurrency is identical (a bidirectional stack exposes two
direction chains per chunk either way — layers cannot pipeline past each
other because each direction of layer l+1 needs the *other* direction of
layer l to finish), so fusing mainly removes per-task runtime overhead and
task-boundary cache traffic.

The measurement: fusing buys a modest constant factor (bounded below), while
per-cell tasking keeps the properties the paper's system actually needs —
per-batch graph rebuilds for variable sequence lengths (§III-B), per-cell
locality-aware placement (Fig. 7), and merge tasks that decouple the
direction chains (§III-A).  The per-cell overhead itself stays far below
the paper's 10% bound (see bench_granularity.py).
"""

from benchmarks.common import run_once
from repro.analysis.report import format_table
from repro.harness.simtime import simulated_batch_time
from repro.models.cells import cell_bwd_flops, cell_fwd_flops
from repro.models.spec import BRNNSpec
from repro.runtime.depgraph import TaskGraph
from repro.runtime.simexec import SimulatedExecutor
from repro.runtime.task import INTERLEAVED_HOME, RegionSpace
from repro.simarch.presets import xeon_8160_2s


def build_fused_graph(spec, seq_len, batch, mbs):
    """Training graph with one task per (chunk, layer, direction, phase)."""
    g = TaskGraph()
    rs = RegionSpace()
    isz = 4
    for mb in range(mbs):
        bc = batch // mbs
        for phase, flops_fn in (("fwd", cell_fwd_flops), ("bwd", cell_bwd_flops)):
            for layer in range(spec.num_layers):
                lyr = spec.num_layers - 1 - layer if phase == "bwd" else layer
                chain_flops = seq_len * flops_fn(spec, bc, lyr)
                for direction in ("f", "r"):
                    w = rs.get(("W", lyr, direction), 0)
                    w.home = INTERLEAVED_HOME
                    ins = [w]
                    act_bytes = bc * spec.merged_size * isz * seq_len
                    if phase == "fwd" and lyr > 0:
                        ins.append(rs.get(("act", mb, lyr - 1, "fwd"), act_bytes, streaming=True))
                    if phase == "bwd":
                        ins.append(rs.get(("act", mb, lyr, "fwd"), act_bytes, streaming=True))
                        if lyr < spec.num_layers - 1:
                            ins.append(rs.get(("grad", mb, lyr + 1, "bwd"), act_bytes, streaming=True))
                    outs = [rs.get(("chain", mb, lyr, direction, phase),
                                   bc * spec.hidden_size * isz * seq_len, streaming=True)]
                    if direction == "r":  # both directions feed the layer act
                        outs.append(rs.get(("act" if phase == "fwd" else "grad", mb, lyr, phase), 0))
                    g.add_task(
                        f"{phase}.chain[{mb}]L{lyr}{direction}",
                        None,
                        ins=ins,
                        outs=outs,
                        flops=chain_flops,
                        kind="cell" if phase == "fwd" else "cell_bwd",
                        # the chain sweeps the shared weight panel once per
                        # timestep, not once per task
                        meta={"reuse": seq_len * min(6.0, 1.0 + bc / 32.0)},
                    )
    return g


def test_granularity_ablation(benchmark):
    spec = BRNNSpec(cell="lstm", input_size=256, hidden_size=256, num_layers=8,
                    merge_mode="sum", head="many_to_one", num_classes=11)
    seq_len, batch, mbs, cores = 100, 128, 8, 48

    def run():
        per_cell = simulated_batch_time(spec, seq_len, batch, mbs=mbs, n_cores=cores)
        machine = xeon_8160_2s()
        sim = SimulatedExecutor(machine, n_cores=cores)
        fused_graph = build_fused_graph(spec, seq_len, batch, mbs)
        sim.run(fused_graph)  # warm
        fused_trace = sim.run(fused_graph)
        fused_s = fused_trace.makespan + len(fused_graph) * machine.task_create_s
        return per_cell, fused_s, len(fused_graph)

    per_cell, fused_s, fused_tasks = run_once(benchmark, run)
    overhead_factor = per_cell.seconds / fused_s
    print()
    print(format_table(
        ["variant", "tasks", "time s"],
        [
            ["per-cell (B-Par)", per_cell.n_tasks, round(per_cell.seconds, 3)],
            ["fused per-layer", fused_tasks, round(fused_s, 3)],
        ],
        title="Ablation: task granularity on 48 cores (8-layer BLSTM)",
    ))
    print(f"  fine-grained tasking cost factor: {overhead_factor:.2f}x "
          f"(buys variable-length graphs, locality placement, merge decoupling)")

    # per-cell creates two orders of magnitude more tasks...
    assert per_cell.n_tasks > 20 * fused_tasks
    # ...yet costs only a modest constant factor: both variants expose the
    # same 2-chains-per-chunk structural concurrency, so the difference is
    # pure runtime overhead + task-boundary traffic
    assert 1.0 <= overhead_factor < 2.0, overhead_factor
    benchmark.extra_info["per_cell_s"] = per_cell.seconds
    benchmark.extra_info["fused_s"] = fused_s
    benchmark.extra_info["cost_factor"] = overhead_factor
