"""Online serving: dynamic batching vs. no batching on the simulated machine.

The serving layer (``repro.serve``) replays a Poisson request stream
against the Table III BLSTM on the simulated 48-core Xeon.  Shape
criteria: at an arrival rate that saturates an unbatched server,

* dynamic batching (``max_batch_size 32``) sustains **>= 3x** the
  throughput of ``max_batch_size 1`` (it amortises per-batch fixed costs
  and task-creation overheads across requests, exactly the effect SHARP
  and BatchMaker exploit);
* the unbatched server saturates and sheds load (backpressure works);
* the batched server's p99 latency stays below the unbatched p50 —
  batching here is a latency *win* because it drains the queue faster.

The JSON report (schema checked by ``tools/check_serving_report.py``) is
written next to pytest's rootdir as ``serving_report.json`` or to
``$REPRO_SERVING_REPORT``.
"""

import json
import os

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.models.spec import BRNNSpec
from repro.config import ExecutionConfig
from repro.serve import (
    InferenceEngine,
    Server,
    ServeConfig,
    WorkloadConfig,
    poisson_workload,
)

ARRIVAL_RATE = 200.0
MBS = 4


def serving_spec() -> BRNNSpec:
    return BRNNSpec(cell="lstm", input_size=64, hidden_size=256, num_layers=6,
                    merge_mode="sum", num_classes=11)


def run_serving(max_batch_size: int, duration_s: float, rate_hz: float = ARRIVAL_RATE):
    """One serving run; returns the summary dict."""
    spec = serving_spec()
    requests = poisson_workload(
        WorkloadConfig(rate_hz=rate_hz, duration_s=duration_s,
                       seq_len_range=(40, 100)),
        seed=0,
    )
    engine = InferenceEngine(spec, config=ExecutionConfig(executor="sim", mbs=MBS))
    config = ServeConfig(queue_capacity=128, max_batch_size=max_batch_size,
                         max_wait=5e-3, bucket_width=20)
    return Server(engine, config).run(requests).summary()


def test_dynamic_batching_throughput(benchmark):
    duration = 5.0 if full_grids() else 2.0

    def run():
        return {bs: run_serving(bs, duration) for bs in (1, 32)}

    results = run_once(benchmark, run)
    unbatched, batched = results[1], results[32]

    print()
    print(format_table(
        ["max_batch", "thr rps", "completed", "shed", "p50 ms", "p99 ms",
         "mean batch", "padding"],
        [[bs, round(s["throughput_rps"], 1), s["requests"]["completed"],
          s["requests"]["shed"], round(s["latency_s"]["p50"] * 1e3, 1),
          round(s["latency_s"]["p99"] * 1e3, 1),
          round(s["batches"]["mean_size"], 1),
          round(s["batches"]["padding_overhead"], 3)]
         for bs, s in sorted(results.items())],
        title=f"Serving @ {ARRIVAL_RATE:.0f} req/s Poisson, sim 48-core Xeon",
    ))

    report = {
        "arrival_rate_hz": ARRIVAL_RATE,
        "duration_s": duration,
        "sweep": {str(bs): s for bs, s in results.items()},
        "speedup": batched["throughput_rps"] / unbatched["throughput_rps"],
    }
    out_path = os.environ.get("REPRO_SERVING_REPORT", "serving_report.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)

    # dynamic batching >= 3x unbatched throughput (acceptance criterion)
    assert batched["throughput_rps"] >= 3.0 * unbatched["throughput_rps"]
    # the unbatched server saturates: backpressure sheds a sizeable fraction
    assert unbatched["requests"]["shed"] > 0.2 * unbatched["requests"]["total"]
    # the batched server keeps up: nearly everything completes
    assert batched["requests"]["completed"] > 0.95 * batched["requests"]["total"]
    # batching drains the queue faster => even tail latency beats unbatched p50
    assert batched["latency_s"]["p99"] < unbatched["latency_s"]["p50"]
    # length bucketing keeps padding waste bounded
    assert batched["batches"]["padding_overhead"] < 0.25
    benchmark.extra_info["throughput_speedup"] = report["speedup"]


def test_bursty_traffic_backpressure(benchmark):
    """Bursty arrivals: the queue absorbs bursts, sheds only under overload."""
    from repro.serve import bursty_workload

    spec = serving_spec()
    requests = bursty_workload(
        WorkloadConfig(rate_hz=120.0, duration_s=2.0, seq_len_range=(40, 100),
                       burst_factor=4.0, burst_fraction=0.2),
        seed=1,
    )

    def run():
        engine = InferenceEngine(spec, config=ExecutionConfig(executor="sim", mbs=MBS))
        config = ServeConfig(queue_capacity=64, max_batch_size=32,
                             max_wait=5e-3, bucket_width=20)
        return Server(engine, config).run(requests).summary()

    s = run_once(benchmark, run)
    print()
    print(f"bursty: {s['requests']['completed']}/{s['requests']['total']} completed, "
          f"shed {s['requests']['shed']}, p99 {s['latency_s']['p99'] * 1e3:.0f} ms, "
          f"peak queue {s['queue_depth']['max']:.0f}")
    # every request is accounted for exactly once
    assert s["requests"]["total"] == len(requests)
    # the bounded queue never exceeded its capacity
    assert s["queue_depth"]["max"] <= 64
    # the server survives bursts: most requests complete
    assert s["requests"]["completed"] > 0.8 * s["requests"]["total"]
    benchmark.extra_info["p99_ms"] = s["latency_s"]["p99"] * 1e3
