"""Executor substrate comparison: worker processes vs worker threads.

The multiprocess executor (``executor="process"``, docs/EXECUTORS.md)
escapes the GIL by running payloads in pinned worker processes over
shared memory.  This bench records the two regimes that bound its value:

* ``gil_bound`` (``fusion="off"``): per-gate GEMMs + separate pointwise
  activation passes — small tasks that hold the GIL and serialise the
  threaded executor.  On a multi-core host the process executor must
  clear **1.3×** the threaded median.
* ``default`` (``fusion="gates"``): large stacked GEMMs that release the
  GIL.  Transport overhead must cost ≤10 % (**≥0.9×** threaded).

The speed-up bars are asserted here and by
``tools/check_multiproc_report.py`` only when the host has ≥2 cores —
parallel speed-up is unmeasurable on one core — but bitwise equivalence
of the two substrates' logits and the zero-leaked-segments invariant are
asserted unconditionally, at paper scale.

Set ``REPRO_BENCH_FULL=1`` for more timing iterations.
"""

import os

import pytest

from benchmarks.common import emit_bench_json, full_grids, run_once
from repro.harness.mpbench import (
    MIN_DEFAULT_SPEEDUP,
    MIN_GIL_BOUND_SPEEDUP,
    RECORD_CONFIG,
    run_multiproc_bench,
)


def test_record_config(benchmark):
    """Paper-scale point: measure, assert the bars, write the record."""
    point = run_once(
        benchmark,
        lambda: run_multiproc_bench(
            **RECORD_CONFIG, iters=7 if full_grids() else 3, warmup=1
        ),
    )
    results = point["results"]
    path = emit_bench_json("multiproc", point["config"], results)
    print(f"\nmultiproc record -> {path}")
    for name, row in results["regimes"].items():
        print(f"  {name}: process {row['process']['median_s']*1e3:.1f} ms vs "
              f"threaded {row['threaded']['median_s']*1e3:.1f} ms "
              f"(x{row['speedup_median']:.2f})")
    print(f"  host_cores={results['host_cores']} "
          f"leaked_segments={results['leaked_segments']}")
    assert results["bitwise_identical"], "substrates diverged bitwise"
    assert results["leaked_segments"] == 0, "run leaked /dev/shm segments"
    if results["host_cores"] >= 2:
        regimes = results["regimes"]
        assert regimes["gil_bound"]["speedup_median"] >= MIN_GIL_BOUND_SPEEDUP
        assert regimes["default"]["speedup_median"] >= MIN_DEFAULT_SPEEDUP


@pytest.mark.parametrize("mbs", [1, 4])
def test_small_scale_end_to_end(benchmark, mbs):
    """Laptop-scale sanity at both chunkings: both regimes run end-to-end,
    stay bitwise identical, and leak nothing (no speed-up asserted)."""
    point = run_once(
        benchmark,
        lambda: run_multiproc_bench(
            cell="gru", input_size=64, hidden=32, layers=2,
            seq_len=16, batch=8, mbs=mbs, iters=2, warmup=1,
        ),
    )
    results = point["results"]
    assert results["bitwise_identical"]
    assert results["leaked_segments"] == 0
    for row in results["regimes"].values():
        assert row["speedup_median"] > 0.0
