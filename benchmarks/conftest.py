import sys
from pathlib import Path

# make `benchmarks.common` importable when pytest rootdir differs
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
