"""Fig. 3 — B-Par speed-up vs B-Par-mbs:1-on-1-core, cores × mini-batch size.

Paper shape: speed-up grows with core count for high-mbs configurations
(best around mbs:8-12 on 48 cores); low-mbs configurations saturate at
roughly 2x mbs (two direction chains per chunk) and gain nothing beyond a
handful of cores; NUMA effects appear above one socket for low-concurrency
configurations.
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.harness.figures import fig3_minibatch_scaling


def test_fig3_minibatch_scaling(benchmark):
    if full_grids():
        core_counts = (1, 2, 4, 8, 16, 24, 32, 48)
        mbs_list = (1, 2, 4, 6, 8, 10, 12)
        layers = 8
    else:
        core_counts = (1, 8, 24, 48)
        mbs_list = (1, 2, 4, 8)
        layers = 8

    series = run_once(
        benchmark,
        lambda: fig3_minibatch_scaling(
            layers=layers, core_counts=core_counts, mbs_list=mbs_list
        ),
    )
    print()
    print(format_table(
        ["mbs"] + [f"{c}c" for c in core_counts],
        [[f"mbs:{m}"] + [round(s, 2) for s in series[m]] for m in mbs_list],
        title=f"Fig. 3 (reproduced): B-Par speed-up vs mbs:1 @ 1 core ({layers}-layer BLSTM)",
    ))

    by_mbs = {m: series[m] for m in mbs_list}
    # mbs:1 self-speed-up is 1 on one core
    assert abs(by_mbs[1][0] - 1.0) < 0.05
    # low-mbs saturates near 2x mbs (two direction chains per chunk)
    assert by_mbs[1][-1] < 3.0
    assert by_mbs[2][-1] < 6.0
    # high-mbs keeps scaling: best point of mbs>=8 beats every mbs<=2 point
    best_high = max(by_mbs[max(mbs_list)])
    assert best_high > max(by_mbs[1]) * 3
    # more cores never hurt badly for the high-mbs series (scaling holds)
    high = by_mbs[8] if 8 in by_mbs else by_mbs[max(mbs_list)]
    assert high[-1] >= 0.8 * max(high)
    benchmark.extra_info["best_speedup"] = best_high
