"""Ablation — ready-queue policy: FIFO (breadth-first) vs LIFO vs locality.

DESIGN.md §6.  The paper's B-Par uses the OmpSs breadth-first scheduler
(global FIFO queue) with the locality mechanism on top.  This ablation
checks that the choice is not load-bearing for makespan on a saturated
machine (any work-conserving order is within a few percent) — the
locality mechanism matters for *cache behaviour* (Fig. 7), not raw
dependency throughput — and that results are identical regardless.
"""

import numpy as np

from benchmarks.common import run_once
from repro.analysis.report import format_table
from repro.core import BParEngine
from repro.harness.simtime import simulated_batch_time
from repro.models.params import BRNNParams
from repro.models.spec import BRNNSpec
from repro.runtime.simexec import SimulatedExecutor
from repro.simarch.presets import laptop_sim

POLICIES = ("fifo", "lifo", "locality", "steal")


def test_queue_policy_ablation(benchmark):
    spec = BRNNSpec(cell="lstm", input_size=256, hidden_size=256, num_layers=8,
                    merge_mode="sum", head="many_to_one", num_classes=11)

    def run():
        return {
            policy: simulated_batch_time(
                spec, 100, 128, mbs=8, n_cores=48, scheduler=policy
            ).seconds
            for policy in POLICIES
        }

    times = run_once(benchmark, run)
    print()
    print(format_table(
        ["policy", "time s", "vs fifo"],
        [[p, round(t, 3), round(t / times["fifo"], 3)] for p, t in times.items()],
        title="Ablation: ready-queue policy, 8-layer BLSTM mbs:8 @ 48 cores",
    ))

    base = times["fifo"]
    for policy, t in times.items():
        assert abs(t - base) / base < 0.25, f"{policy} diverges >25% from fifo"

    # numerics are schedule-independent: identical logits under every policy
    small = BRNNSpec(cell="lstm", input_size=8, hidden_size=6, num_layers=3,
                     merge_mode="sum", head="many_to_one", num_classes=4)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((5, 6, 8)).astype(np.float32)
    labels = rng.integers(0, 4, size=6)
    outputs = []
    for policy in POLICIES:
        sim = SimulatedExecutor(laptop_sim(4), scheduler=policy, execute_payloads=True)
        eng = BParEngine(small, params=BRNNParams.initialize(small, seed=1), executor=sim)
        _, logits, _ = eng.loss_and_grads(x, labels)
        outputs.append(logits)
    assert all(np.array_equal(outputs[0], o) for o in outputs[1:])
    benchmark.extra_info.update({p: times[p] for p in POLICIES})
