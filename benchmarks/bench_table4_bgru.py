"""Table IV — BGRU single-batch training times and B-Par speed-ups.

Same structure as Table III with GRU cells.  Paper bands: B-Par beats
K-CPU by 1.56-2.34x and P-CPU by 2.15-7.49x; the parameter counts are
~25% smaller than the BLSTM rows (3 gates instead of 4).
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.harness.tables import (
    HEADERS,
    TABLE_CONFIGS,
    TABLE_CONFIGS_SMOKE,
    make_spec,
    run_table,
)


def test_table4_bgru(benchmark):
    configs = TABLE_CONFIGS if full_grids() else TABLE_CONFIGS_SMOKE
    rows = run_once(benchmark, lambda: run_table("gru", configs))
    print()
    print(format_table(HEADERS, [r.as_list() for r in rows],
                       title="Table IV (reproduced): BGRU training, ms/batch"))

    for row in rows:
        cfg = f"{row.input_size}/{row.hidden_size}/{row.batch}/{row.seq_len}"
        assert row.speedup_k_cpu > 1.0, f"{cfg}: B-Par lost to Keras-CPU"
        assert row.speedup_p_cpu > 1.0, f"{cfg}: B-Par lost to PyTorch-CPU"
        assert 1.0 < row.speedup_k_cpu < 3.5, cfg
        assert row.bseq_ms >= row.bpar_ms, cfg
        if row.params_m > 90:
            assert row.p_gpu_ms is None, cfg

    # GRU rows are cheaper than the equivalent LSTM rows (3 vs 4 gates)
    lstm_spec = make_spec("lstm", 256, 256)
    gru_spec = make_spec("gru", 256, 256)
    assert gru_spec.num_parameters() < lstm_spec.num_parameters()
    benchmark.extra_info["max_speedup_vs_keras"] = max(r.speedup_k_cpu for r in rows)
