"""Ablation: sequence-level fused input projections vs per-step GEMMs.

The tentpole optimisation hoists each layer's ``X_t @ W_x`` GEMMs out of
the recurrent dependency chain into per-block sequence-level GEMMs
(``fused_input_projection`` on the engines).  This bench quantifies it on
both substrates:

* **threaded** — real wall time on the host, at the paper-scale recorded
  configuration (spectrogram-like 1024-feature input).  The fused path
  must clear 1.2× median inference throughput over per-step; the record
  lands in ``benchmarks/baselines/BENCH_fused_projection.json``.
* **sim** — cost-only graphs on the modelled 48-core Xeon, swept over
  ``seq_len``/``hidden``/``cores``.  The flop-weighted critical path must
  *strictly* shrink everywhere: the hoisted GEMMs leave only the
  ``(B,H)×(H,GH)`` recurrent half on the chain.

Set ``REPRO_BENCH_FULL=1`` for the wider grids.
"""

import pytest

from benchmarks.common import emit_bench_json, full_grids, run_once
from repro.harness.fusedbench import (
    RECORD_CONFIG,
    run_fused_bench,
    simulated_comparison,
    make_spec,
)

#: acceptance bar for the recorded paper-scale configuration
MIN_THREADED_SPEEDUP = 1.2


def test_record_config(benchmark):
    """Paper-scale point: measure, assert the bar, and write the record."""
    point = run_once(
        benchmark,
        lambda: run_fused_bench(
            **RECORD_CONFIG, iters=11 if full_grids() else 9, warmup=2
        ),
    )
    threaded = point["results"]["threaded"]
    sim = point["results"]["sim"]
    path = emit_bench_json("fused_projection", point["config"], point["results"])
    print(f"\nfused-projection record -> {path}")
    for mode, s in threaded["speedup_median"].items():
        print(f"  threaded speedup[{mode}] = {s:.3f}x")
    print(f"  sim critical-path reduction = {100 * sim['critical_path_reduction']:.1f}%")
    assert threaded["speedup_median"]["on"] >= MIN_THREADED_SPEEDUP
    # auto fuses a subset of layers, so it lands between off and on; hold
    # it to no-regression rather than the full bar (wall-clock noise on
    # shared hosts makes the midpoint jittery)
    assert threaded["speedup_median"]["auto"] >= 1.0
    # simulated critical path strictly decreases
    assert 0.0 < sim["critical_path_reduction"] < 1.0
    assert sim["sim_speedup"] > 1.0


@pytest.mark.parametrize("seq_len", [16, 100, 200] if full_grids() else [16, 100])
def test_sim_seq_len_sweep(benchmark, seq_len):
    """The chain shrinks at every T (blocks kept shorter than the sequence:
    a single whole-sequence block gates the first cell on all the hoisted
    flops and the flop-weighted path is exactly per-step's)."""
    spec = make_spec("lstm", 1024, 128, 2, "many_to_one")
    out = run_once(
        benchmark, lambda: simulated_comparison(spec, seq_len, 32, proj_block=4)
    )
    assert 0.0 < out["critical_path_reduction"] < 1.0


@pytest.mark.parametrize("hidden", [64, 128, 512] if full_grids() else [64, 256])
def test_sim_hidden_sweep(benchmark, hidden):
    """The reduction holds across hidden sizes (input share varies)."""
    spec = make_spec("lstm", 1024, hidden, 2, "many_to_one")
    out = run_once(benchmark, lambda: simulated_comparison(spec, 50, 32))
    assert 0.0 < out["critical_path_reduction"] < 1.0


@pytest.mark.parametrize("cores", [1, 8, 48] if full_grids() else [1, 48])
def test_sim_cores_sweep(benchmark, cores):
    """Makespan benefit across core counts on the modelled machine."""
    spec = make_spec("lstm", 1024, 128, 2, "many_to_one")
    out = run_once(
        benchmark, lambda: simulated_comparison(spec, 50, 32, n_cores=cores)
    )
    assert 0.0 < out["critical_path_reduction"] < 1.0
    # fewer serial GEMM flops → the simulated batch should not get slower
    assert out["sim_speedup"] > 0.95


@pytest.mark.parametrize("seq_len", [12, 48])
def test_threaded_small_scale(benchmark, seq_len):
    """Small-host sanity: fused stays numerically live and roughly on par.

    At laptop scale (small input sizes) the hoisted GEMM buys little — the
    point of ``auto`` — so no speed-up is asserted here, only that the
    ablation runs end-to-end on the threaded executor.
    """
    point = run_once(
        benchmark,
        lambda: run_fused_bench(
            cell="gru", input_size=128, hidden=64, layers=2,
            seq_len=seq_len, batch=16, iters=3,
        ),
    )
    for mode, s in point["results"]["threaded"]["speedup_median"].items():
        assert s > 0.0
