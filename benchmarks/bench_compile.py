"""Graph compilation & cached plan replay on the serving hot path.

``repro.compile`` freezes a built task graph into a transitive-reduced,
list-scheduled :class:`~repro.compile.plan.CompiledPlan` that both
executors replay without re-resolving dependences per batch, cached per
``(config fingerprint, batch shape)``.  This bench quantifies it:

* **overhead** — cost-only graphs on the threaded executor (no payloads,
  so wall time is the runtime's own bookkeeping): replaying a compiled
  plan must beat dynamic dependence resolution under *every* measured
  policy (``reduction_ratio > 1``); the record lands in
  ``benchmarks/baselines/BENCH_compile.json``.
* **serving** — a simulated ``compile="on"`` engine must hit the plan
  cache on every warm shape (``warm_hit_rate == 1.0``) and compile each
  shape exactly once.
* **equivalence** — compiled-plan replay is bitwise identical to the
  dynamic FIFO schedule on a functional training build.

Set ``REPRO_BENCH_FULL=1`` for more timing iterations.
"""

import pytest

from benchmarks.common import emit_bench_json, full_grids, run_once
from repro.harness.compilebench import (
    RECORD_CONFIG,
    equivalence_section,
    run_compile_bench,
    serving_cache_stats,
)
from repro.harness.fusedbench import make_spec


def test_record_config(benchmark):
    """Recorded point: measure, assert the gates, and write the record."""
    point = run_once(
        benchmark,
        lambda: run_compile_bench(
            **RECORD_CONFIG, iters=30 if full_grids() else 15, warmup=2
        ),
    )
    overhead = point["results"]["overhead"]
    plan = point["results"]["plan"]
    serving = point["results"]["serving"]
    path = emit_bench_json("compile", point["config"], point["results"])
    print(f"\ncompile record -> {path}")
    print(f"  overhead reduction = x{overhead['reduction_ratio']:.3f} "
          f"(fifo x{overhead['reduction_ratio_fifo']:.3f}, "
          f"locality x{overhead['reduction_ratio_locality']:.3f})")
    print(f"  redundant edges removed = {plan['n_edges_redundant']:.0f}/"
          f"{plan['n_edges_declared']:.0f} "
          f"({100 * plan['redundant_edge_fraction']:.1f}%)")
    print(f"  serving warm hit rate = {serving['warm_hit_rate']:.2f}")
    assert overhead["reduction_ratio"] > 1.0
    assert 0.0 < plan["redundant_edge_fraction"] < 1.0
    assert serving["warm_hit_rate"] == 1.0
    assert point["results"]["equivalence"]["bitwise_identical"]


@pytest.mark.parametrize("mbs", [1, 4] if full_grids() else [4])
def test_serving_cache_mbs(benchmark, mbs):
    """The warm-shape guarantee holds across chunking factors."""
    spec = make_spec("lstm", 64, 64, 2, "many_to_one")
    out = run_once(
        benchmark,
        lambda: serving_cache_stats(
            spec, [(40, 8), (20, 4)], mbs=mbs, sim_cores=8, repeats=3
        ),
    )
    assert out["warm_hit_rate"] == 1.0
    assert out["cache"]["compiles"] == out["n_shapes"]


@pytest.mark.parametrize("cell,head", [
    ("lstm", "many_to_one"),
    ("gru", "many_to_many"),
])
def test_equivalence_cells(benchmark, cell, head):
    """Replay equivalence holds for both cell types and heads."""
    out = run_once(benchmark, lambda: equivalence_section(cell, head))
    assert out["bitwise_identical"], out["mismatched_arrays"]
