"""§IV-B "Memory Consumption" — working set with vs without barriers.

Paper: an 8-layer BLSTM at mbs:6 keeps on average 16 tasks in flight
barrier-free (75.36 MB live working set) but only 6 with per-layer
synchronisation (28.26 MB) — i.e. the barrier-free speed-up is bought
with a ~2.7x larger in-flight working set, with no accuracy difference.
"""

from benchmarks.common import run_once
from repro.harness.figures import memory_study


def test_memory_consumption(benchmark):
    free, barred = run_once(benchmark, lambda: memory_study(mbs=6))
    print()
    print("§IV-B memory (reproduced), 8-layer BLSTM, mbs:6:")
    print(f"  barrier-free : avg live tasks {free.mean_live_tasks:5.1f}  "
          f"avg live WSS {free.mean_live_wss_bytes / 1e6:6.2f} MB   (paper: 16 / 75.36 MB)")
    print(f"  with barriers: avg live tasks {barred.mean_live_tasks:5.1f}  "
          f"avg live WSS {barred.mean_live_wss_bytes / 1e6:6.2f} MB   (paper:  6 / 28.26 MB)")
    ratio_tasks = free.mean_live_tasks / barred.mean_live_tasks
    ratio_wss = free.mean_live_wss_bytes / barred.mean_live_wss_bytes
    print(f"  ratios       : live tasks {ratio_tasks:.2f}x, WSS {ratio_wss:.2f}x   "
          f"(paper: 2.67x / 2.67x)")

    # with per-layer synchronisation ~mbs tasks are live (paper: 6 at mbs:6)
    assert 4.0 < barred.mean_live_tasks < 9.0
    # barrier-free runs ~2-3x more tasks (paper: 16 vs 6)
    assert 1.5 < ratio_tasks < 3.5
    # and a correspondingly larger live working set
    assert 1.5 < ratio_wss < 3.5
    benchmark.extra_info["live_tasks_free"] = free.mean_live_tasks
    benchmark.extra_info["live_tasks_barriered"] = barred.mean_live_tasks
