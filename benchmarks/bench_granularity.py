"""§IV-B "Task-granularity" — counts, durations, working sets, overhead.

Paper figures for a 6-layer BLSTM (seq 100, batch 128, input 64, hidden
512): 368,240 tasks per epoch, LSTM-cell working set ≈ 4.71 MB (exactly
the fused weight matrix), durations 272.8 µs - 315 ms with mean 13.05 ms,
merge tasks far smaller than cell tasks, and runtime overhead ≥10x smaller
than in-task time.
"""

import pytest

from benchmarks.common import run_once
from repro.harness.figures import granularity_study
from repro.models.spec import BRNNSpec


def test_granularity(benchmark):
    stats, per_epoch = run_once(benchmark, lambda: granularity_study())
    spec = BRNNSpec(cell="lstm", input_size=64, hidden_size=512, num_layers=6,
                    merge_mode="sum", num_classes=11)
    # layer 0 fuses (input 64 + hidden 512) x 4·512 weights = 4.72 MB —
    # exactly the paper's reported average LSTM-cell working set
    w_shape, b_shape = spec.cell_param_shapes(0)
    weight_bytes = (w_shape[0] * w_shape[1] + b_shape[0]) * 4

    print()
    print("§IV-B granularity (reproduced), BLSTM seq100/batch128/in64/hid512:")
    for label, value in stats.rows():
        print(f"  {label:24s} {value}")
    print(f"  {'tasks per epoch':24s} {per_epoch}  (paper: 368,240)")
    print(f"  {'layer weight matrix':24s} {weight_bytes / 1e6:.2f} MB  (paper cell WSS: 4.71 MB)")

    # per-epoch task count within 25% of the paper's 368,240
    assert 0.75 * 368_240 < per_epoch < 1.25 * 368_240
    # the weight matrix is the paper's 4.71 MB working set
    assert weight_bytes == pytest.approx(4.71e6, rel=0.01)
    # duration spread: sub-millisecond to tens of milliseconds
    assert stats.duration_min_s < 1e-3
    assert stats.duration_max_s > 5e-3
    assert 1e-3 < stats.duration_mean_s < 50e-3  # paper mean 13.05 ms
    # percentile helpers (ExecutionTrace.duration_percentiles) are ordered
    # and bracketed by the extremes
    assert (stats.duration_min_s <= stats.duration_p50_s
            <= stats.duration_p95_s <= stats.duration_p99_s
            <= stats.duration_max_s)
    # merge tasks have much smaller working sets than cell tasks (paper)
    assert stats.merge_wss_mean_bytes < stats.cell_wss_mean_bytes / 10
    # runtime overhead at least 10x smaller than in-task time (paper)
    assert stats.overhead_ratio < 0.1
    benchmark.extra_info["tasks_per_epoch"] = per_epoch
    benchmark.extra_info["mean_task_ms"] = stats.duration_mean_s * 1e3
