"""Fig. 5 — best batch-training time across batch sizes and hidden sizes.

Paper shape: B-Par beats Keras-CPU and PyTorch-CPU on every (layers,
hidden, batch) combination, with speed-ups in the 1.58-6.40x band across
the grid; PyTorch is the slowest engine everywhere.
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.harness.figures import fig5_hidden_batch


def test_fig5_hidden_batch(benchmark):
    if full_grids():
        kwargs = dict(layers_list=(8, 12), batches=(128, 256, 512, 1024), hiddens=(128, 256))
    else:
        kwargs = dict(layers_list=(8,), batches=(128, 512), hiddens=(128, 256))
    rows = run_once(benchmark, lambda: fig5_hidden_batch(**kwargs))
    print()
    print(format_table(
        ["L", "hidden", "batch", "Keras s", "PyTorch s", "B-Seq s", "B-Par s", "K/BP", "P/BP"],
        [
            [r["layers"], r["hidden"], r["batch"],
             round(r["keras"], 3), round(r["pytorch"], 3),
             round(r["bseq"], 3), round(r["bpar"], 3),
             round(r["keras"] / r["bpar"], 2), round(r["pytorch"] / r["bpar"], 2)]
            for r in rows
        ],
        title="Fig. 5 (reproduced): batch/hidden sweep, training time",
    ))

    for r in rows:
        cfg = (r["layers"], r["hidden"], r["batch"])
        assert r["bpar"] < r["keras"], f"{cfg}: B-Par lost to Keras"
        assert r["bpar"] < r["pytorch"], f"{cfg}: B-Par lost to PyTorch"
        speedup_k = r["keras"] / r["bpar"]
        assert 1.0 < speedup_k < 7.0, f"{cfg}: speed-up {speedup_k} out of band"
        assert r["pytorch"] >= r["keras"], f"{cfg}: PyTorch should be slowest"
    benchmark.extra_info["max_speedup"] = max(r["keras"] / r["bpar"] for r in rows)
