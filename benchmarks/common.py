"""Shared helpers for the benchmark suite.

Every ``bench_*.py`` regenerates one table or figure of the paper on the
simulated 48-core machine, prints it in the paper's layout, and asserts the
*shape* criteria from DESIGN.md §4 (who wins, by roughly what factor, where
crossovers fall).  Absolute milliseconds are model outputs, not wall time.

Set ``REPRO_BENCH_FULL=1`` to run the paper's complete configuration grids
(minutes); the default grids cover every regime in a few seconds per bench.
"""

import os

from repro.harness.bench_json import (  # noqa: F401  (shared bench-JSON helpers)
    bench_json_path,
    summarize_times,
    write_bench_json,
)


def emit_bench_json(bench: str, config: dict, results: dict) -> str:
    """Write a ``BENCH_<name>.json`` record to the baselines directory.

    Wall-clock benches call this after measuring so every run leaves a
    machine-readable record (config + median/p95 + speed-ups) that
    ``tools/check_bench_report.py`` can validate; ``REPRO_BENCH_DIR``
    redirects the output (CI smoke runs point it at a temp dir).
    """
    path = bench_json_path(bench)
    write_bench_json(path, bench, config, results)
    return path


def full_grids() -> bool:
    """True when the complete paper grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The interesting output of these benches is the *simulated* timing data
    printed afterwards; pytest-benchmark wraps the experiment so the whole
    suite integrates with ``--benchmark-only`` runs and records the wall
    time of regenerating each table/figure.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
