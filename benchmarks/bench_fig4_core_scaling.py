"""Fig. 4 — Keras, B-Seq, PyTorch and B-Par batch time vs CPU core count.

Paper shape: B-Seq cannot use more than ~mbs cores, so it flattens at 8
cores and B-Seq ≈ Keras on 8-16 cores; Keras/PyTorch stop improving (and
degrade with NUMA) beyond 16-24 cores; B-Par keeps scaling and is the
fastest engine from 16 cores up, with its best time at 48 cores.
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.harness.figures import fig4_core_scaling


def test_fig4_core_scaling(benchmark):
    core_counts = (1, 2, 4, 8, 16, 24, 32, 48) if full_grids() else (1, 8, 16, 24, 48)
    s = run_once(
        benchmark, lambda: fig4_core_scaling(layers=8, core_counts=core_counts)
    )
    print()
    rows = [
        ["Keras"] + [round(v, 3) for v in s.keras],
        ["B-Seq mbs:8"] + [round(v, 3) for v in s.bseq],
        ["PyTorch"] + [round(v, 3) for v in s.pytorch],
        ["B-Par mbs:8"] + [round(v, 3) for v in s.bpar],
    ]
    print(format_table(
        ["engine"] + [f"{c}c" for c in core_counts], rows,
        title="Fig. 4 (reproduced): batch training time (s) vs cores, 8-layer BLSTM",
    ))

    idx = {c: i for i, c in enumerate(core_counts)}
    # B-Par's best time is at the maximum core count (paper: 0.44 s @ 48c)
    assert min(s.bpar) == s.bpar[idx[48]]
    # B-Seq saturates: at most 10% further gain beyond 8 cores
    assert min(s.bseq) > 0.9 * s.bseq[idx[8]]
    # B-Seq ~ Keras in the 8-16 core regime (paper observation)
    assert 0.5 < s.bseq[idx[8]] / s.keras[idx[8]] < 2.0
    # beyond 16 cores B-Par clearly beats Keras and PyTorch
    assert s.bpar[idx[48]] < s.keras[idx[48]] / 1.5
    assert s.bpar[idx[48]] < s.pytorch[idx[48]] / 2.0
    # PyTorch is the slowest CPU engine throughout (paper)
    assert all(p >= k for p, k in zip(s.pytorch, s.keras))
    benchmark.extra_info["bpar_best_s"] = min(s.bpar)
