"""Real-hardware benchmark: B-Par on the host's actual cores.

Unlike the simulated paper reproductions, this bench measures *wall time*
of the threaded executor running real NumPy kernels.  Cell tasks are
GEMM-dominated, and NumPy releases the GIL inside BLAS, so on a multi-core
host barrier-free task parallelism yields genuine speed-up over serial
execution even from pure Python — the laptop-scale version of the paper's
claim.  (On a single-core host the threaded and serial numbers coincide
modulo runtime overhead; no speed-up is asserted.)
"""

import os

import numpy as np
import pytest

from repro.core import BParEngine
from repro.models.params import BRNNParams
from repro.models.spec import BRNNSpec
from repro.runtime import SerialExecutor, ThreadedExecutor
from tests.conftest import make_batch  # reuse deterministic batch helper

SPEC = BRNNSpec(
    cell="lstm", input_size=128, hidden_size=192, num_layers=4,
    merge_mode="sum", head="many_to_one", num_classes=11,
)
SEQ_LEN, BATCH = 24, 64


def _batch():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((SEQ_LEN, BATCH, SPEC.input_size)).astype(np.float32)
    labels = rng.integers(0, SPEC.num_classes, size=BATCH)
    return x, labels


def test_threaded_train_batch(benchmark):
    x, labels = _batch()
    workers = min(8, os.cpu_count() or 1)
    engine = BParEngine(SPEC, params=BRNNParams.initialize(SPEC, seed=0),
                        executor=ThreadedExecutor(workers))
    loss = benchmark(lambda: engine.train_batch(x, labels, lr=0.01))
    assert np.isfinite(loss)
    benchmark.extra_info["workers"] = workers


def test_serial_train_batch(benchmark):
    x, labels = _batch()
    engine = BParEngine(SPEC, params=BRNNParams.initialize(SPEC, seed=0),
                        executor=SerialExecutor())
    loss = benchmark(lambda: engine.train_batch(x, labels, lr=0.01))
    assert np.isfinite(loss)


def test_threaded_inference(benchmark):
    x, _ = _batch()
    workers = min(8, os.cpu_count() or 1)
    engine = BParEngine(SPEC, params=BRNNParams.initialize(SPEC, seed=0),
                        executor=ThreadedExecutor(workers))
    logits = benchmark(lambda: engine.forward(x))
    assert logits.shape == (BATCH, SPEC.num_classes)


def test_reference_train_batch(benchmark):
    """The sequential oracle as the no-runtime-overhead baseline."""
    from repro.models.reference import reference_train_step

    x, labels = _batch()
    params = BRNNParams.initialize(SPEC, seed=0)
    loss = benchmark(lambda: reference_train_step(SPEC, params, x, labels, lr=0.01))
    assert np.isfinite(loss)
