"""Real-hardware benchmark: B-Par on the host's actual cores.

Unlike the simulated paper reproductions, this bench measures *wall time*
of the threaded executor running real NumPy kernels.  Cell tasks are
GEMM-dominated, and NumPy releases the GIL inside BLAS, so on a multi-core
host barrier-free task parallelism yields genuine speed-up over serial
execution even from pure Python — the laptop-scale version of the paper's
claim.  (On a single-core host the threaded and serial numbers coincide
modulo runtime overhead; no speed-up is asserted.)
"""

import os

import numpy as np
import pytest

from benchmarks.common import emit_bench_json, summarize_times
from repro.core import BParEngine
from repro.models.params import BRNNParams
from repro.models.spec import BRNNSpec
from repro.runtime import SerialExecutor, ThreadedExecutor
from tests.conftest import make_batch  # reuse deterministic batch helper

SPEC = BRNNSpec(
    cell="lstm", input_size=128, hidden_size=192, num_layers=4,
    merge_mode="sum", head="many_to_one", num_classes=11,
)
SEQ_LEN, BATCH = 24, 64

#: per-test wall-clock summaries, flushed to BENCH_threaded_real.json
_RESULTS = {}


def _record(name: str, benchmark) -> None:
    """Summarise this test's raw timings into the module-level record."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:  # --benchmark-disable runs have nothing to record
        return
    _RESULTS[name] = summarize_times(list(stats.stats.data))


@pytest.fixture(scope="module", autouse=True)
def _bench_report():
    """After every test in this module ran, emit the machine-readable record."""
    yield
    if not _RESULTS:
        return
    results = dict(_RESULTS)
    serial = results.get("serial_train_batch")
    threaded = results.get("threaded_train_batch")
    if serial and threaded:
        results["speedup_median"] = {
            "threaded_vs_serial_train": serial["median_s"] / threaded["median_s"]
        }
    emit_bench_json(
        "threaded_real",
        config={
            "cell": SPEC.cell, "input_size": SPEC.input_size,
            "hidden": SPEC.hidden_size, "layers": SPEC.num_layers,
            "head": SPEC.head, "seq_len": SEQ_LEN, "batch": BATCH,
            "workers": min(8, os.cpu_count() or 1),
        },
        results=results,
    )


def _batch():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((SEQ_LEN, BATCH, SPEC.input_size)).astype(np.float32)
    labels = rng.integers(0, SPEC.num_classes, size=BATCH)
    return x, labels


def test_threaded_train_batch(benchmark):
    x, labels = _batch()
    workers = min(8, os.cpu_count() or 1)
    engine = BParEngine(SPEC, params=BRNNParams.initialize(SPEC, seed=0),
                        executor=ThreadedExecutor(workers))
    loss = benchmark(lambda: engine.train_batch(x, labels, lr=0.01))
    assert np.isfinite(loss)
    benchmark.extra_info["workers"] = workers
    _record("threaded_train_batch", benchmark)


def test_serial_train_batch(benchmark):
    x, labels = _batch()
    engine = BParEngine(SPEC, params=BRNNParams.initialize(SPEC, seed=0),
                        executor=SerialExecutor())
    loss = benchmark(lambda: engine.train_batch(x, labels, lr=0.01))
    assert np.isfinite(loss)
    _record("serial_train_batch", benchmark)


def test_threaded_inference(benchmark):
    x, _ = _batch()
    workers = min(8, os.cpu_count() or 1)
    engine = BParEngine(SPEC, params=BRNNParams.initialize(SPEC, seed=0),
                        executor=ThreadedExecutor(workers))
    logits = benchmark(lambda: engine.forward(x))
    assert logits.shape == (BATCH, SPEC.num_classes)
    _record("threaded_inference", benchmark)


def test_reference_train_batch(benchmark):
    """The sequential oracle as the no-runtime-overhead baseline."""
    from repro.models.reference import reference_train_step

    x, labels = _batch()
    params = BRNNParams.initialize(SPEC, seed=0)
    loss = benchmark(lambda: reference_train_step(SPEC, params, x, labels, lr=0.01))
    assert np.isfinite(loss)
    _record("reference_train_batch", benchmark)
