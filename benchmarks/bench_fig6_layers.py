"""Fig. 6 — training AND inference batch time vs layer count.

Paper shape: B-Par scales best with depth (more layers = more barrier-free
pipeline parallelism); at 12 layers it reaches ~5.89x (inference) and
~6.40x (training) over the frameworks, and the gap *widens* with depth
because per-layer barriers cost more the deeper the network.
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.harness.figures import fig6_layers


def test_fig6_layers(benchmark):
    layer_counts = (2, 4, 8, 12) if full_grids() else (2, 8, 12)
    rows = run_once(benchmark, lambda: fig6_layers(layer_counts=layer_counts))
    print()
    print(format_table(
        ["L", "K train", "P train", "BSeq train", "BPar train",
         "K infer", "P infer", "BSeq infer", "BPar infer", "K/BP train"],
        [
            [r["layers"],
             round(r["keras_train"], 3), round(r["pytorch_train"], 3),
             round(r["bseq_train"], 3), round(r["bpar_train"], 3),
             round(r["keras_infer"], 3), round(r["pytorch_infer"], 3),
             round(r["bseq_infer"], 3), round(r["bpar_infer"], 3),
             round(r["keras_train"] / r["bpar_train"], 2)]
            for r in rows
        ],
        title="Fig. 6 (reproduced): layer-count sweep, seconds/batch",
    ))

    for r in rows:
        assert r["bpar_train"] < r["keras_train"]
        assert r["bpar_train"] < r["pytorch_train"]
        assert r["bpar_infer"] < r["keras_infer"]
        assert r["bpar_infer"] < r["bpar_train"]
    # the B-Par advantage grows with depth (barrier cost scales with layers)
    speedups = [r["keras_train"] / r["bpar_train"] for r in rows]
    assert speedups[-1] > speedups[0]
    benchmark.extra_info["speedup_12_layers"] = speedups[-1]
