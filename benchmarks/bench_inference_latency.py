"""Inference latency at batch 1: CPU (B-Par) vs GPU frameworks.

The paper's introduction motivates CPU inference with "the low latency
[CPUs] display for small batch sizes" (real-time inference, FBLearner,
edge/space deployments).  This bench quantifies that claim on the model
side of Tables III/IV: single-sample inference latency across sequence
lengths.  Shape criterion: B-Par on the CPU wins at short sequences
(GPU time is all kernel-launch latency there) and the GPU catches up as
sequences grow and kernels fatten — the same crossover the training
tables show.
"""

from benchmarks.common import full_grids, run_once
from repro.analysis.report import format_table
from repro.baselines import keras_gpu_model, pytorch_gpu_model
from repro.harness.simtime import simulated_batch_time
from repro.harness.tables import make_spec


def test_inference_latency_batch1(benchmark):
    seq_lens = (2, 5, 10, 25, 50, 100) if full_grids() else (2, 10, 100)
    spec = make_spec("lstm", 256, 256)
    k_gpu = keras_gpu_model()
    p_gpu = pytorch_gpu_model()

    def run():
        rows = []
        for seq in seq_lens:
            bpar = simulated_batch_time(
                spec, seq, 1, mbs=1, n_cores=48, training=False
            ).seconds
            rows.append(
                {
                    "seq": seq,
                    "bpar_ms": bpar * 1e3,
                    "k_gpu_ms": k_gpu.batch_time(spec, seq, 1, training=False) * 1e3,
                    "p_gpu_ms": p_gpu.batch_time(spec, seq, 1, training=False) * 1e3,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["seq len", "B-Par CPU ms", "Keras-GPU ms", "PyTorch-GPU ms"],
        [[r["seq"], round(r["bpar_ms"], 2), round(r["k_gpu_ms"], 2),
          round(r["p_gpu_ms"], 2)] for r in rows],
        title="Batch-1 inference latency (6-layer BLSTM 256/256)",
    ))

    shortest, longest = rows[0], rows[-1]
    # short sequences: CPU beats both GPU frameworks (launch-latency bound)
    assert shortest["bpar_ms"] < shortest["k_gpu_ms"]
    assert shortest["bpar_ms"] < shortest["p_gpu_ms"]
    # PyTorch-GPU's eager per-timestep dispatch loses to Keras-GPU once the
    # kernel count grows (short sequences are dominated by Keras's larger
    # fixed session cost — as in the paper's seq-2 rows)
    assert all(r["p_gpu_ms"] >= r["k_gpu_ms"] for r in rows if r["seq"] >= 50)
    # the GPU's *relative* position improves with sequence length
    assert (longest["k_gpu_ms"] / longest["bpar_ms"]) < (
        shortest["k_gpu_ms"] / shortest["bpar_ms"]
    )
    benchmark.extra_info["crossover_observed"] = longest["k_gpu_ms"] < longest["bpar_ms"]
