"""Fleet serving soak: replica scaling, admission shedding, warm plans.

The fleet benchmark (``repro.harness.fleetbench``, docs/SERVING.md) runs
entirely on the deterministic simulated machine with ``compile="on"``,
so its record — ``benchmarks/baselines/BENCH_fleet.json`` — is
bit-stable.  Bars enforced here and by ``tools/check_fleet_report.py``:

* a 4-replica fleet sustains ≥ 3× the single-replica request rate at
  p99 SLO attainment ≥ 0.99 under a Poisson soak, while the same rate
  collapses a single replica (attainment < 0.9);
* bursty overload is shed at admission (token buckets + deadline
  budgets), not served late: sheds > 0 with completed-request
  attainment still ≥ 0.99;
* the per-shape warm compiled-plan hit rate after fleet-start warmup
  stays ≥ 0.9;
* the consistent-hash router compiles strictly fewer plans than
  least-loaded on the same workload (shape → home-replica affinity).
"""

import pytest

from benchmarks.common import emit_bench_json, full_grids, run_once
from repro.harness.fleetbench import run_fleet_bench

MIN_RATE_RATIO = 3.0
MIN_ATTAINMENT = 0.99
MIN_WARM_RATE = 0.9


def test_record_config(benchmark):
    """Calibrated soak: measure, assert the bars, and write the record."""
    point = run_once(
        benchmark,
        lambda: run_fleet_bench(duration_s=4.0 if full_grids() else 3.0),
    )
    results = point["results"]
    cal = results["calibration"]
    fleet = results["fleet_at_fleet_rate"]
    single_ok = results["single_at_single_rate"]
    single_hot = results["single_at_fleet_rate"]
    bursty = results["bursty_overload"]
    routers = results["routers"]
    path = emit_bench_json("fleet", point["config"], results)
    print(f"\nfleet record -> {path}")
    print(f"  fleet rate {cal['fleet_rate_hz']:.0f} req/s "
          f"({cal['rate_ratio']:.1f}x single)")
    print(f"  attainment single={single_ok['attainment']:.4f} "
          f"overloaded={single_hot['attainment']:.4f} "
          f"fleet={fleet['attainment']:.4f}")
    print(f"  warm hit rate {fleet['warm_hit_rate']:.3f}; "
          f"bursty sheds {bursty['shed']} ({bursty['shed_reasons']})")
    print(f"  compiles hash={routers['hash']['compiles']} "
          f"least_loaded={routers['least_loaded']['compiles']}")
    assert cal["rate_ratio"] >= MIN_RATE_RATIO
    assert single_ok["attainment"] >= MIN_ATTAINMENT
    assert single_hot["attainment"] < 0.9  # the fleet rate is a real overload
    assert fleet["attainment"] >= MIN_ATTAINMENT
    assert fleet["warm_hit_rate"] >= MIN_WARM_RATE
    # overload is refused at admission, not queued and served late
    assert bursty["shed"] > 0
    assert bursty["completed_attainment"] >= MIN_ATTAINMENT
    assert bursty["late_completions"] == 0
    # every shed carries a taxonomy reason and accounting closes
    for section in (single_ok, single_hot, fleet, bursty):
        assert section["completed"] + section["shed"] == section["requests"]
        assert sum(section["shed_reasons"].values()) == section["shed"]
    # shape affinity: the hash router compiles each shape once per fleet
    assert routers["hash"]["compiles"] < routers["least_loaded"]["compiles"]


@pytest.mark.parametrize("replicas", [2, 4])
def test_fleet_scales_with_replicas(benchmark, replicas):
    """Attainment holds as the offered rate scales with the pool size."""
    point = run_once(
        benchmark,
        lambda: run_fleet_bench(
            replicas=replicas,
            rate_ratio=0.8 * replicas,
            duration_s=2.0,
        ),
    )
    fleet = point["results"]["fleet_at_fleet_rate"]
    assert fleet["attainment"] >= MIN_ATTAINMENT
    # the load actually spread: every replica served something
    assert len(fleet["routing"]) == replicas
