# Convenience targets; CI (.github/workflows/ci.yml) runs `test`, `lint`,
# `smoke-serving`, `smoke-fused`, `smoke-racecheck`, `smoke-analysis`,
# `smoke-obs`, `smoke-compile`, `smoke-fusion`, `smoke-mp`,
# `smoke-verify` and `smoke-fleet` on every push.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

SMOKE_REPORT ?= /tmp/repro_serving_smoke.json
SMOKE_FUSED_REPORT ?= /tmp/repro_fused_smoke.json
SMOKE_ANALYSIS_REPORT ?= /tmp/repro_analysis_smoke.json
SMOKE_OBS_REPORT ?= /tmp/repro_obs_smoke.json
SMOKE_COMPILE_REPORT ?= /tmp/repro_compile_smoke.json
SMOKE_FUSION_REPORT ?= /tmp/repro_fusion_smoke.json
SMOKE_MP_REPORT ?= /tmp/repro_mp_smoke.json
SMOKE_VERIFY_CERT ?= /tmp/repro_verify_cert.json
SMOKE_FLEET_REPORT ?= /tmp/repro_fleet_smoke.json
# CI runners are noisy shared tenants: the committed baseline records the
# ≤2 % claim; the freshly-measured smoke run gets slack against tenancy.
SMOKE_OBS_BUDGET ?= 1.10

.PHONY: test lint smoke-serving smoke-fused smoke-racecheck smoke-analysis smoke-obs smoke-compile smoke-fusion smoke-mp smoke-verify smoke-fleet bench fused-bench fusion-bench multiproc-bench serve-bench fleet-bench clean

# tier-1: the full unit/integration/property suite (serving tests included)
test:
	$(PYTHON) -m pytest -x -q

# fast serving smoke: tiny config end-to-end through the real CLI, then a
# hard failure on any regression in the reported JSON schema
smoke-serving:
	$(PYTHON) -m repro serve-bench \
		--arrival-rate 50 --duration 0.3 --executor sim \
		--max-batch-size 8 --hidden 16 --layers 2 --input-size 8 \
		--seq-min 8 --seq-max 24 --bucket-width 8 --mbs 1 \
		--output $(SMOKE_REPORT) > /dev/null
	$(PYTHON) tools/check_serving_report.py $(SMOKE_REPORT)

# fast fused-projection smoke: numerical-equivalence tests, then a tiny
# ablation end-to-end through the real CLI, then the JSON schema gate
smoke-fused:
	$(PYTHON) -m pytest tests/core/test_fused_projection.py tests/kernels/test_flops_accounting.py -x -q
	$(PYTHON) -m repro fused-bench \
		--cell lstm --input-size 256 --hidden 32 --layers 2 \
		--seq-len 24 --batch 8 --iters 3 --mbs 1 \
		--output $(SMOKE_FUSED_REPORT) > /dev/null
	$(PYTHON) tools/check_bench_report.py $(SMOKE_FUSED_REPORT)

# AST lint over the whole package: payload-closure capture audit,
# mutable defaults, swallowed exceptions, float64 creep in the kernels.
# Zero findings required; waive individual lines with `# lint: waive <rule>`.
lint:
	$(PYTHON) -m repro analyze --skip-graph --lint src/repro

# static-analysis smoke: the analysis suite's own tests (graph linter,
# over-declaration analyzer, AST lint, 64-config conformance sweep), then
# a tiny graph end-to-end through the real CLI, then the JSON gate that
# enforces zero findings and the serialization-debt budget — on both the
# smoke report and the committed paper-scale baseline
smoke-analysis:
	$(PYTHON) -m pytest tests/analysis/test_graphlint.py tests/analysis/test_pylint.py tests/analysis/test_analysis_conformance.py -x -q
	$(PYTHON) -m repro analyze \
		--hidden 5 --layers 2 --input-size 6 --seq-len 4 --batch 4 --mbs 2 \
		--output $(SMOKE_ANALYSIS_REPORT) > /dev/null
	$(PYTHON) tools/check_analysis.py $(SMOKE_ANALYSIS_REPORT) \
		benchmarks/baselines/BENCH_graph_analysis.json

# observability smoke: the obs-layer unit tests, then the scheduler-counter
# comparison + metrics-overhead A/B end-to-end through the real CLI, then
# the JSON gate — strict ≤2 % budget on the committed baseline, tenancy
# slack on the freshly-measured smoke run
smoke-obs:
	$(PYTHON) -m pytest tests/obs -x -q
	$(PYTHON) -m repro obs-report \
		--policy locality --compare fifo --cores 16 \
		--seq-len 30 --batch 8 --mbs 2 --iters 7 \
		--overhead-budget $(SMOKE_OBS_BUDGET) \
		--output $(SMOKE_OBS_REPORT) > /dev/null
	$(PYTHON) tools/check_obs_report.py --budget $(SMOKE_OBS_BUDGET) $(SMOKE_OBS_REPORT)
	$(PYTHON) tools/check_obs_report.py benchmarks/baselines/BENCH_obs_overhead.json

# race-detector smoke: the checker's own unit tests, then the mutation
# self-test gate (clean graph -> zero findings; each seeded dependence
# deletion -> detected; fuzzed schedules -> bitwise identical to FIFO)
smoke-racecheck:
	$(PYTHON) -m pytest tests/runtime/test_racecheck.py tests/runtime/test_schedule_fuzz.py -x -q
	$(PYTHON) tools/check_racecheck.py

# compiled-replay smoke: the compile-package unit tests + mutated-plan
# regression, then a reduced-size compile-bench end-to-end through the
# real CLI (overhead A/B vs both dynamic policies, warm-shape cache hit
# rate, bitwise equivalence), then the JSON gate — on both the fresh
# smoke report and the committed paper-scale baseline
smoke-compile:
	$(PYTHON) -m pytest tests/compile/test_plan.py tests/compile/test_compiler.py \
		tests/compile/test_cache.py tests/compile/test_check_plan.py \
		tests/compile/test_executor_replay.py -x -q
	$(PYTHON) -m repro compile-bench \
		--hidden 32 --layers 2 --input-size 16 --seq-len 20 --batch 8 \
		--mbs 2 --iters 8 --repeats 3 \
		--output $(SMOKE_COMPILE_REPORT) > /dev/null
	$(PYTHON) tools/check_compile_report.py $(SMOKE_COMPILE_REPORT)
	$(PYTHON) tools/check_compile_report.py benchmarks/baselines/BENCH_compile.json

# fusion-ladder smoke: the numerical-equivalence + flop-conservation
# tests, then a reduced-size ablation end-to-end through the real CLI
# (threaded ladder, simulated critical path, wavefront-vs-layered static
# contrast), then the JSON gate — schema-only on the fresh smoke run
# (laptop-scale shapes carry no speed-up claim), full 1.5×/0.686 bars on
# the committed paper-scale baseline
smoke-fusion:
	$(PYTHON) -m pytest tests/core/test_fusion.py tests/kernels/test_flops_accounting.py -x -q
	$(PYTHON) -m repro fusion-bench \
		--cell lstm --input-size 256 --hidden 32 --layers 2 \
		--seq-len 24 --batch 8 --iters 3 --mbs 1 \
		--output $(SMOKE_FUSION_REPORT) > /dev/null
	$(PYTHON) tools/check_fusion_report.py --min-speedup 0 $(SMOKE_FUSION_REPORT)
	$(PYTHON) tools/check_fusion_report.py --min-speedup 1.5 \
		benchmarks/baselines/BENCH_fusion.json

# multiprocess-executor smoke: the full cross-executor conformance,
# fault-injection, shm-arena property and schedule-fuzz sweeps (the
# `slow_mp` legs included), then a tiny substrate comparison end-to-end
# through the real CLI, then the JSON gate — bitwise + zero-leak always;
# speed-up bars only on ≥2-core recordings — on both the fresh smoke
# report and the committed paper-scale baseline
smoke-mp:
	$(PYTHON) -m pytest tests/runtime/test_executor_conformance.py \
		tests/runtime/test_mpexec_faults.py tests/properties/test_shm_arena.py \
		tests/runtime/test_schedule_fuzz.py -x -q -m "slow_mp or not slow_mp"
	$(PYTHON) -m repro multiproc-bench \
		--cell gru --input-size 64 --hidden 32 --layers 2 \
		--seq-len 16 --batch 8 --iters 2 --mbs 2 \
		--output $(SMOKE_MP_REPORT) > /dev/null
	$(PYTHON) tools/check_multiproc_report.py $(SMOKE_MP_REPORT)
	$(PYTHON) tools/check_multiproc_report.py benchmarks/baselines/BENCH_multiproc.json

# symbolic-verifier smoke: the affine-algebra units, the verifier's own
# positive/negative/mutation tests and the adversarial edge-drop /
# shrink / widen properties, then the full 96-family certificate
# end-to-end through the real CLI (--strict: any uncertified family,
# missed mutation, or dynamic cross-validation finding is nonzero),
# then the standalone certificate gate
smoke-verify:
	$(PYTHON) -m pytest tests/analysis/test_symbolic.py \
		tests/analysis/test_verify.py \
		tests/properties/test_verify_properties.py -x -q
	$(PYTHON) -m repro analyze --skip-graph --verify --strict \
		--verify-output $(SMOKE_VERIFY_CERT)
	$(PYTHON) tools/check_verify.py $(SMOKE_VERIFY_CERT)

# fleet-serving smoke: the serve-layer unit tests (config shim, router,
# admission, continuous batching, fleet loop), then the calibrated soak
# end-to-end through the real CLI (the command itself exits nonzero when
# a bar fails), then the JSON gate — on both the fresh smoke report and
# the committed paper-scale baseline
smoke-fleet:
	$(PYTHON) -m pytest tests/serve -x -q
	$(PYTHON) -m repro fleet-bench --output $(SMOKE_FLEET_REPORT) > /dev/null
	$(PYTHON) tools/check_fleet_report.py $(SMOKE_FLEET_REPORT)
	$(PYTHON) tools/check_fleet_report.py benchmarks/baselines/BENCH_fleet.json

# regenerate every paper table/figure + the serving sweep (minutes)
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# the acceptance-criteria fused-projection ablation (paper-scale input),
# recording benchmarks/baselines/BENCH_fused_projection.json
fused-bench:
	$(PYTHON) -m pytest benchmarks/bench_fused_projection.py --benchmark-only -q

# the acceptance-criteria fusion-ladder ablation (paper-scale input),
# recording benchmarks/baselines/BENCH_fusion.json
fusion-bench:
	$(PYTHON) -m pytest benchmarks/bench_fusion.py --benchmark-only -q

# the acceptance-criteria executor substrate comparison (paper-scale
# GIL-bound shape), recording benchmarks/baselines/BENCH_multiproc.json
multiproc-bench:
	$(PYTHON) -m pytest benchmarks/bench_multiproc.py --benchmark-only -q

# the acceptance-criteria serving run (paper machine, 200 req/s, 5 s)
serve-bench:
	$(PYTHON) -m repro serve-bench --arrival-rate 200 --duration 5 --executor sim

# the acceptance-criteria fleet soak (4 replicas, calibrated rates),
# recording benchmarks/baselines/BENCH_fleet.json
fleet-bench:
	$(PYTHON) -m repro fleet-bench --output benchmarks/baselines/BENCH_fleet.json

clean:
	rm -f $(SMOKE_REPORT) $(SMOKE_FUSED_REPORT) $(SMOKE_ANALYSIS_REPORT) \
		$(SMOKE_OBS_REPORT) $(SMOKE_COMPILE_REPORT) $(SMOKE_FUSION_REPORT) \
		$(SMOKE_MP_REPORT) $(SMOKE_VERIFY_CERT) $(SMOKE_FLEET_REPORT) \
		serving_report.json
