# Convenience targets; CI (.github/workflows/ci.yml) runs `test` and
# `smoke-serving` on every push.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

SMOKE_REPORT ?= /tmp/repro_serving_smoke.json

.PHONY: test smoke-serving bench serve-bench clean

# tier-1: the full unit/integration/property suite (serving tests included)
test:
	$(PYTHON) -m pytest -x -q

# fast serving smoke: tiny config end-to-end through the real CLI, then a
# hard failure on any regression in the reported JSON schema
smoke-serving:
	$(PYTHON) -m repro serve-bench \
		--arrival-rate 50 --duration 0.3 --executor sim \
		--max-batch-size 8 --hidden 16 --layers 2 --input-size 8 \
		--seq-min 8 --seq-max 24 --bucket-width 8 --mbs 1 \
		--output $(SMOKE_REPORT) > /dev/null
	$(PYTHON) tools/check_serving_report.py $(SMOKE_REPORT)

# regenerate every paper table/figure + the serving sweep (minutes)
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# the acceptance-criteria serving run (paper machine, 200 req/s, 5 s)
serve-bench:
	$(PYTHON) -m repro serve-bench --arrival-rate 200 --duration 5 --executor sim

clean:
	rm -f $(SMOKE_REPORT) serving_report.json
